"""Reference interpreter semantics, one instruction class at a time."""

import pytest

from conftest import adder_spec
from repro.config import MachineConfig
from repro.core.coprocessor import ProteusCoprocessor
from repro.core.tlb import IDTuple
from repro.cpu.assembler import assemble
from repro.cpu.core import CPU, CPUState
from repro.cpu.exceptions import (
    CustomInstructionFault,
    ExitTrap,
    SyscallTrap,
)
from repro.cpu.isa import CODE_BASE, code_address
from repro.cpu.memory import Memory
from repro.errors import CPUError, MemoryFault

CONFIG = MachineConfig(cycles_per_ms=1000)


def build_cpu(source: str, coprocessor=None, pid=1):
    program = assemble(source)
    memory = Memory(size=16 * 1024)
    memory.write_block(program.data_base, program.data)
    state = CPUState(memory=memory)
    state.pc = code_address(program.entry_index)
    cpu = CPU(
        config=CONFIG,
        program=program.instructions,
        state=state,
        coprocessor=coprocessor or ProteusCoprocessor(config=CONFIG),
        pid=pid,
    )
    return cpu


def run_to_halt(cpu: CPU, max_steps: int = 10_000) -> int:
    cycles = 0
    for _ in range(max_steps):
        try:
            cycles += cpu.step().cycles
        except ExitTrap:
            return cycles
    raise AssertionError("program did not halt")


class TestDataProcessing:
    def test_arithmetic(self):
        cpu = build_cpu(
            """
            MOV r0, #10
            ADD r1, r0, #5
            SUB r2, r1, r0
            RSB r3, r0, #100
            MUL r4, r1, r2
            HALT
            """
        )
        run_to_halt(cpu)
        regs = cpu.state.regs
        assert regs[1] == 15 and regs[2] == 5 and regs[3] == 90
        assert regs[4] == 75

    def test_logic(self):
        cpu = build_cpu(
            """
            MOV r0, #0xFF
            AND r1, r0, #0x0F
            ORR r2, r0, #0x100
            EOR r3, r0, #0xFF
            BIC r4, r0, #0x0F
            MVN r5, #0
            HALT
            """
        )
        run_to_halt(cpu)
        regs = cpu.state.regs
        assert regs[1] == 0x0F and regs[2] == 0x1FF and regs[3] == 0
        assert regs[4] == 0xF0 and regs[5] == 0xFFFFFFFF

    def test_shifts(self):
        cpu = build_cpu(
            """
            MOV r0, #1
            LSL r1, r0, #31
            LSR r2, r1, #31
            ASR r3, r1, #31
            MOV r4, #0x80
            ROR r5, r4, #8
            HALT
            """
        )
        run_to_halt(cpu)
        regs = cpu.state.regs
        assert regs[1] == 0x80000000
        assert regs[2] == 1
        assert regs[3] == 0xFFFFFFFF
        assert regs[5] == 0x80000000

    def test_shift_by_register(self):
        cpu = build_cpu(
            """
            MOV r0, #4
            MOV r1, #3
            LSL r2, r0, r1
            HALT
            """
        )
        run_to_halt(cpu)
        assert cpu.state.regs[2] == 32

    def test_wraparound(self):
        cpu = build_cpu(
            """
            MVN r0, #0
            ADD r1, r0, #1
            HALT
            """
        )
        run_to_halt(cpu)
        assert cpu.state.regs[1] == 0

    def test_pc_write_rejected(self):
        cpu = build_cpu("MOV pc, #0\nHALT")
        with pytest.raises(CPUError):
            cpu.step()


class TestBranches:
    def test_loop_counts(self):
        cpu = build_cpu(
            """
            MOV r0, #0
            MOV r1, #5
            loop:
                ADD r0, r0, #1
                SUB r1, r1, #1
                CMP r1, #0
                BNE loop
            HALT
            """
        )
        run_to_halt(cpu)
        assert cpu.state.regs[0] == 5

    def test_untaken_branch_costs_less(self):
        cpu = build_cpu("CMP r0, #1\nBEQ skip\nskip: HALT")
        cpu.step()
        result = cpu.step()
        assert result.cycles == CONFIG.alu_cycles  # not taken

    def test_taken_branch_cost(self):
        cpu = build_cpu("B skip\nNOP\nskip: HALT")
        assert cpu.step().cycles == CONFIG.branch_cycles

    def test_bl_links(self):
        cpu = build_cpu(
            """
            main:
                BL func
                HALT
            func:
                MOV r0, #7
                BX lr
            """
        )
        run_to_halt(cpu)
        assert cpu.state.regs[0] == 7

    def test_bx_to_non_code_rejected(self):
        cpu = build_cpu("MOV r0, #0\nBX r0\nHALT")
        cpu.step()
        with pytest.raises((CPUError, ValueError)):
            cpu.step()


class TestMemoryOps:
    def test_word_ops_with_offset(self):
        cpu = build_cpu(
            """
            .data
            buf: .word 111, 222
            .text
            MOV r0, #buf
            LDR r1, [r0]
            LDR r2, [r0, #4]
            STR r2, [r0]
            HALT
            """
        )
        run_to_halt(cpu)
        assert cpu.state.regs[1] == 111
        assert cpu.state.regs[2] == 222
        assert cpu.state.memory.load_word(0x1000) == 222

    def test_post_increment(self):
        cpu = build_cpu(
            """
            .data
            buf: .word 1, 2, 3
            .text
            MOV r0, #buf
            LDR r1, [r0], #4
            LDR r2, [r0], #4
            HALT
            """
        )
        run_to_halt(cpu)
        assert (cpu.state.regs[1], cpu.state.regs[2]) == (1, 2)
        assert cpu.state.regs[0] == 0x1000 + 8

    def test_byte_ops(self):
        cpu = build_cpu(
            """
            .data
            buf: .byte 0xAA, 0xBB
            .text
            MOV r0, #buf
            LDRB r1, [r0, #1]
            STRB r1, [r0]
            HALT
            """
        )
        run_to_halt(cpu)
        assert cpu.state.regs[1] == 0xBB
        assert cpu.state.memory.load_byte(0x1000) == 0xBB

    def test_fault_propagates(self):
        cpu = build_cpu("MOV r0, #0\nLDR r1, [r0]\nHALT")
        cpu.step()
        with pytest.raises(MemoryFault):
            cpu.step()


class TestTraps:
    def test_swi_advances_pc_first(self):
        cpu = build_cpu("SWI #3\nHALT")
        with pytest.raises(SyscallTrap) as excinfo:
            cpu.step()
        assert excinfo.value.number == 3
        assert cpu.state.pc == CODE_BASE + 4  # resume after the SWI

    def test_halt_raises_exit_with_status(self):
        cpu = build_cpu("MOV r0, #42\nHALT")
        cpu.step()
        with pytest.raises(ExitTrap) as excinfo:
            cpu.step()
        assert excinfo.value.status == 42
        assert cpu.state.halted

    def test_pc_out_of_program(self):
        cpu = build_cpu("NOP")
        cpu.step()
        with pytest.raises(CPUError):
            cpu.step()


class TestCoprocessorOps:
    def test_mcr_mrc(self):
        cpu = build_cpu(
            """
            MOV r0, #77
            MCR f3, r0
            MRC r1, f3
            HALT
            """
        )
        run_to_halt(cpu)
        assert cpu.state.regs[1] == 77

    def cdp_cpu(self):
        coprocessor = ProteusCoprocessor(config=CONFIG)
        instance = adder_spec(latency=4).instantiate(1, CONFIG)
        coprocessor.load_circuit(0, instance)
        coprocessor.dispatch.map_hardware(IDTuple(1, 1), 0)
        cpu = build_cpu(
            """
            MOV r0, #30
            MOV r1, #12
            MCR f0, r0
            MCR f1, r1
            CDP #1, f2, f0, f1
            MRC r2, f2
            HALT
            """,
            coprocessor=coprocessor,
        )
        return cpu

    def test_cdp_hardware(self):
        cpu = self.cdp_cpu()
        run_to_halt(cpu)
        assert cpu.state.regs[2] == 42

    def test_cdp_interrupted_then_resumed(self):
        """§4.4: PC stays on the CDP; re-stepping continues."""
        cpu = self.cdp_cpu()
        for _ in range(4):
            cpu.step()
        result = cpu.step(budget=2)  # latency 4, budget 2: interrupted
        assert not result.retired
        pc_before = cpu.state.pc
        result = cpu.step(budget=1000)
        assert result.retired
        assert cpu.state.pc == pc_before + 4
        run_to_halt(cpu)
        assert cpu.state.regs[2] == 42

    def test_cdp_fault_leaves_pc(self):
        cpu = build_cpu("CDP #9, f0, f0, f0\nHALT")
        with pytest.raises(CustomInstructionFault) as excinfo:
            cpu.step()
        assert excinfo.value.cid == 9
        assert cpu.state.pc == CODE_BASE  # still on the CDP

    def test_cdp_software_dispatch(self):
        source = """
        main:
            MOV r0, #5
            MOV r1, #6
            MCR f0, r0
            MCR f1, r1
            CDP #1, f2, f0, f1
            MRC r2, f2
            HALT
        soft:
            LDO r0, #0
            LDO r1, #1
            MUL r0, r0, r1
            STO r0
            BX lr
        """
        coprocessor = ProteusCoprocessor(config=CONFIG)
        coprocessor.dispatch.map_software(
            IDTuple(1, 1), assemble(source).label_address("soft")
        )
        cpu = build_cpu(source, coprocessor=coprocessor)
        run_to_halt(cpu)
        assert cpu.state.regs[2] == 30

    def test_soft_dispatch_sets_link_register(self):
        source = """
        main:
            CDP #1, f2, f0, f1
            HALT
        soft:
            BX lr
        """
        coprocessor = ProteusCoprocessor(config=CONFIG)
        coprocessor.dispatch.map_software(
            IDTuple(1, 1), assemble(source).label_address("soft")
        )
        cpu = build_cpu(source, coprocessor=coprocessor)
        cpu.step()  # special branch
        assert cpu.state.regs[14] == CODE_BASE + 4
        assert cpu.state.pc == assemble(source).label_address("soft")
