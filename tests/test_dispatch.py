"""The three-way dispatch resolution of Figure 1."""

import pytest

from repro.core.dispatch import DispatchKind, DispatchResult, DispatchUnit
from repro.core.tlb import IDTuple
from repro.errors import DispatchError


def unit() -> DispatchUnit:
    return DispatchUnit.build(tlb_entries=4)


def key(pid, cid):
    return IDTuple(pid=pid, cid=cid)


class TestResolution:
    def test_fault_when_unmapped(self):
        result = unit().resolve(1, 1)
        assert result.kind is DispatchKind.FAULT

    def test_hardware_hit(self):
        u = unit()
        u.map_hardware(key(1, 1), 2)
        result = u.resolve(1, 1)
        assert result.kind is DispatchKind.HARDWARE
        assert result.pfu_index == 2

    def test_software_hit(self):
        u = unit()
        u.map_software(key(1, 1), 0x1000_0040)
        result = u.resolve(1, 1)
        assert result.kind is DispatchKind.SOFTWARE
        assert result.address == 0x1000_0040

    def test_hardware_has_priority_over_software(self):
        """Figure 1: TLB 1 is consulted before TLB 2."""
        u = unit()
        u.map_software(key(1, 1), 0x1000_0040)
        u.map_hardware(key(1, 1), 0)
        assert u.resolve(1, 1).kind is DispatchKind.HARDWARE

    def test_mapping_hardware_clears_stale_software(self):
        u = unit()
        u.map_software(key(1, 1), 0x1000_0040)
        u.map_hardware(key(1, 1), 0)
        u.hardware_tlb.remove(key(1, 1))
        # The software mapping must NOT resurface: it was superseded.
        assert u.resolve(1, 1).kind is DispatchKind.FAULT

    def test_mapping_software_clears_stale_hardware(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        u.map_software(key(1, 1), 0x1000_0040)
        assert u.resolve(1, 1).kind is DispatchKind.SOFTWARE

    def test_pid_isolation(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        assert u.resolve(2, 1).kind is DispatchKind.FAULT

    def test_resolution_statistics(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        u.resolve(1, 1)
        u.resolve(1, 2)
        assert u.resolutions[DispatchKind.HARDWARE] == 1
        assert u.resolutions[DispatchKind.FAULT] == 1


class TestManagement:
    def test_unmap(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        u.unmap(key(1, 1))
        assert u.resolve(1, 1).kind is DispatchKind.FAULT

    def test_unmap_pid(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        u.map_software(key(1, 2), 0x1000_0000)
        u.map_hardware(key(2, 1), 1)
        assert u.unmap_pid(1) == 2
        assert u.resolve(2, 1).kind is DispatchKind.HARDWARE

    def test_unmap_pfu(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        u.map_hardware(key(2, 2), 0)
        u.map_hardware(key(3, 3), 1)
        assert u.unmap_pfu(0) == 2
        assert u.resolve(3, 3).kind is DispatchKind.HARDWARE

    def test_tuples_for_pfu(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        u.map_hardware(key(2, 2), 0)
        assert set(u.tuples_for_pfu(0)) == {key(1, 1), key(2, 2)}

    def test_flush_clears_everything(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        u.map_software(key(1, 2), 0x1000_0000)
        assert u.flush() == 2
        assert u.resolve(1, 1).kind is DispatchKind.FAULT


class TestResultValidation:
    def test_hardware_requires_pfu(self):
        with pytest.raises(DispatchError):
            DispatchResult(kind=DispatchKind.HARDWARE)

    def test_software_requires_address(self):
        with pytest.raises(DispatchError):
            DispatchResult(kind=DispatchKind.SOFTWARE)

    def test_fault_requires_nothing(self):
        DispatchResult(kind=DispatchKind.FAULT)


class TestInterningAndGenerations:
    """Memoized CDP sites depend on two properties: resolutions are
    shared immutable values, and every management call advances the
    generation counter (while datapath lookups never do)."""

    def test_results_are_interned_singletons(self):
        u1, u2 = unit(), unit()
        u1.map_hardware(key(1, 1), 2)
        u2.map_hardware(key(9, 9), 2)
        assert u1.resolve(1, 1) is u1.resolve(1, 1)
        assert u1.resolve(1, 1) is u2.resolve(9, 9)
        assert u1.resolve(5, 5) is u2.resolve(6, 6)  # the fault singleton

    def test_every_management_call_bumps_generation(self):
        u = unit()
        calls = [
            lambda: u.map_hardware(key(1, 1), 0),
            lambda: u.map_software(key(1, 2), 0x1000_0000),
            lambda: u.unmap(key(1, 2)),
            lambda: u.unmap_pid(1),
            lambda: u.unmap_pfu(0),
            lambda: u.flush(),
            lambda: u.restore(u.snapshot()),
        ]
        for call in calls:
            before = u.generation
            call()
            assert u.generation > before, call

    def test_datapath_lookups_leave_generation_alone(self):
        u = unit()
        u.map_hardware(key(1, 1), 0)
        generation = u.generation
        u.resolve(1, 1)
        u.resolve(2, 2)  # fault path probes both TLBs
        assert u.generation == generation

    def test_generation_survives_snapshot_round_trip_as_transient(self):
        """Generations are never serialised — a snapshot taken at any
        generation restores into any other unit."""
        u = unit()
        u.map_hardware(key(1, 1), 3)
        snapshot = u.snapshot()
        assert "generation" not in snapshot
        assert "generation" not in snapshot["hardware_tlb"]
