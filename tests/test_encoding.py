"""32-bit binary encoding round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.assembler import assemble
from repro.cpu.encoding import decode, decode_program, encode, encode_program
from repro.cpu.isa import BRANCH_OPS, Cond, Instruction, Op
from repro.errors import EncodingError

REG = st.integers(min_value=0, max_value=15)


@st.composite
def encodable_instructions(draw):
    """Generate instructions within the format's representable ranges."""
    op = draw(st.sampled_from(list(Op)))
    cond = draw(st.sampled_from(list(Cond)))
    if op in BRANCH_OPS:
        return Instruction(
            op=op, cond=cond, uses_imm=True,
            imm=draw(st.integers(min_value=-(1 << 22), max_value=(1 << 22) - 1)),
        )
    if op is Op.CDP:
        return Instruction(
            op=op, cond=cond, uses_imm=True,
            rd=draw(REG), rn=draw(REG), rm=draw(REG),
            imm=draw(st.integers(min_value=0, max_value=1023)),
        )
    if op in (Op.LDR, Op.STR, Op.LDRB, Op.STRB):
        return Instruction(
            op=op, cond=cond, rd=draw(REG), rn=draw(REG),
            imm=draw(st.integers(min_value=-(1 << 12), max_value=(1 << 12) - 1)),
            post_inc=draw(st.booleans()),
        )
    uses_imm = draw(st.booleans())
    if op in (Op.MOV, Op.MVN) and uses_imm:
        imm = draw(st.integers(min_value=-(1 << 17), max_value=(1 << 17) - 1))
        return Instruction(op=op, cond=cond, rd=draw(REG), imm=imm, uses_imm=True)
    if uses_imm:
        return Instruction(
            op=op, cond=cond, rd=draw(REG), rn=draw(REG),
            imm=draw(st.integers(min_value=-(1 << 12), max_value=(1 << 12) - 1)),
            uses_imm=True,
        )
    return Instruction(op=op, cond=cond, rd=draw(REG), rn=draw(REG), rm=draw(REG))


class TestRoundTrip:
    @given(instruction=encodable_instructions())
    @settings(max_examples=300)
    def test_encode_decode_identity(self, instruction):
        word = encode(instruction)
        assert 0 <= word <= 0xFFFFFFFF
        assert decode(word) == instruction

    def test_assembled_program_roundtrips(self):
        program = assemble(
            """
            main:
                MOV r0, #100
                MOV r1, #-100
                ADD r2, r0, r1
                CMP r2, #0
                BNE main
                LDR r3, [r0], #4
                STR r3, [r1, #-8]
                CDP #9, f1, f2, f3
                SWI #1
                BX lr
            """
        )
        image = encode_program(program.instructions)
        assert decode_program(image) == program.instructions

    def test_program_image_size(self):
        program = assemble("NOP\nNOP\nNOP")
        assert len(encode_program(program.instructions)) == 12


class TestRangeChecks:
    def test_large_mov_immediate_fits_18_bits(self):
        encode(Instruction(op=Op.MOV, rd=0, imm=100_000, uses_imm=True))

    def test_oversized_mov_immediate_rejected(self):
        with pytest.raises(EncodingError, match="literal pool"):
            encode(Instruction(op=Op.MOV, rd=0, imm=1 << 20, uses_imm=True))

    def test_oversized_alu_immediate_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.ADD, rd=0, rn=0, imm=5000, uses_imm=True))

    def test_oversized_cid_rejected(self):
        with pytest.raises(EncodingError):
            encode(
                Instruction(op=Op.CDP, rd=0, rn=0, rm=0, imm=1024, uses_imm=True)
            )

    def test_oversized_branch_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.B, imm=1 << 23, uses_imm=True))

    def test_bad_register_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.ADD, rd=16, rn=0, rm=0))


class TestDecodeErrors:
    def test_oversized_word(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_misaligned_image(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00\x00\x00")
