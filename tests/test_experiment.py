"""Experiment harness: scaling invariants and run outcomes."""

import pytest

from repro.config import PAPER_CONFIG_BYTES, PAPER_CYCLES_PER_MS
from repro.errors import ExperimentError
from repro.sim.experiment import ExperimentSpec, build_kernel, run_experiment
from repro.sim.scaling import scaled_config

SCALE = 1 / 8000  # tiny but well-formed workloads for fast tests


class TestScaledConfig:
    def test_paper_scale_is_faithful(self):
        config = scaled_config(1.0)
        assert config.cycles_per_ms == PAPER_CYCLES_PER_MS
        assert config.config_bus_bytes_per_cycle == 1
        assert config.context_switch_cycles == 150

    def test_load_to_quantum_ratio_is_preserved(self):
        """The key invariant: config-load cycles / quantum cycles stays
        within ~25% of the paper value at any scale."""
        paper = scaled_config(1.0, quantum_ms=1.0)
        paper_ratio = (
            paper.transfer_cycles(PAPER_CONFIG_BYTES) / paper.quantum_cycles
        )
        for scale in (1e-1, 1e-2, 1e-3, 1e-4):
            config = scaled_config(scale, quantum_ms=1.0)
            ratio = (
                config.transfer_cycles(PAPER_CONFIG_BYTES)
                / config.quantum_cycles
            )
            assert abs(ratio - paper_ratio) / paper_ratio < 0.25, scale

    def test_quantum_in_paper_milliseconds(self):
        config = scaled_config(1e-3, quantum_ms=10.0)
        assert config.quantum_cycles == 1000

    def test_invalid_scale_rejected(self):
        with pytest.raises(Exception):
            scaled_config(0)
        with pytest.raises(Exception):
            scaled_config(2.0)

    def test_overrides_pass_through(self):
        config = scaled_config(1e-3, pfu_count=2)
        assert config.pfu_count == 2


class TestSpec:
    def test_rejects_zero_instances(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(workload="alpha", instances=0)

    def test_rejects_unknown_architecture(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(workload="alpha", instances=1, architecture="gpu")

    def test_resolve_items_defaults_to_scaled(self):
        spec = ExperimentSpec(workload="alpha", instances=1, scale=1e-3)
        assert spec.resolve_items() == 6200

    def test_explicit_items_override(self):
        spec = ExperimentSpec(workload="alpha", instances=1, items=10)
        assert spec.resolve_items() == 10

    def test_soft_flag_reaches_config(self):
        spec = ExperimentSpec(workload="alpha", instances=1, soft=True)
        assert spec.build_config().prefer_software_when_full

    def test_build_kernel_architecture(self):
        from repro.baselines.prisc import PriscPorsche

        spec = ExperimentSpec(
            workload="alpha", instances=1, architecture="prisc"
        )
        assert isinstance(build_kernel(spec), PriscPorsche)


class TestRunExperiment:
    def test_single_instance(self):
        outcome = run_experiment(
            ExperimentSpec(workload="alpha", instances=1, scale=SCALE)
        )
        assert outcome.verified
        assert outcome.makespan > 0
        assert len(outcome.completions) == 1

    def test_makespan_is_max_completion(self):
        outcome = run_experiment(
            ExperimentSpec(workload="alpha", instances=3, scale=SCALE)
        )
        assert outcome.makespan == max(outcome.completions)
        assert len(outcome.completions) == 3

    def test_contention_counters_appear(self):
        outcome = run_experiment(
            ExperimentSpec(
                workload="alpha",
                instances=6,
                quantum_ms=1.0,
                scale=SCALE,
            )
        )
        assert outcome.cis["evictions"] > 0

    def test_soft_runs_defer_instead_of_evicting(self):
        outcome = run_experiment(
            ExperimentSpec(
                workload="alpha",
                instances=6,
                quantum_ms=1.0,
                soft=True,
                scale=SCALE,
            )
        )
        assert outcome.cis["soft_deferrals"] >= 2
        assert outcome.cis["evictions"] == 0

    def test_verification_catches_nothing_on_good_runs(self):
        outcome = run_experiment(
            ExperimentSpec(workload="echo", instances=2, scale=SCALE),
            verify=True,
        )
        assert outcome.verified

    def test_per_process_cycles_reported(self):
        outcome = run_experiment(
            ExperimentSpec(workload="alpha", instances=2, scale=SCALE)
        )
        assert len(outcome.process_cycles) == 2
        assert all(cpu > 0 for cpu, __ in outcome.process_cycles)

    def test_determinism(self):
        spec = ExperimentSpec(
            workload="twofish", instances=3, quantum_ms=1.0, scale=SCALE,
            policy="random", seed=5,
        )
        first = run_experiment(spec, verify=False)
        second = run_experiment(spec, verify=False)
        assert first.makespan == second.makespan
        assert first.completions == second.completions
