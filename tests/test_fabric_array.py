"""FPL array regions and placement."""

import pytest

from repro.errors import PlacementError
from repro.fabric.array import FPLArray
from repro.fabric.bitstream import build_bitstream


def bs(name="c1", clbs=100, state_words=2):
    return build_bitstream(name, clbs, state_words, 512, 32)


class TestArray:
    def test_build(self):
        array = FPLArray.build(4, 500)
        assert len(array) == 4
        assert array.total_clbs() == 2000
        assert len(array.free_regions()) == 4

    def test_build_rejects_zero(self):
        with pytest.raises(PlacementError):
            FPLArray.build(0, 500)

    def test_region_bounds(self):
        array = FPLArray.build(2, 500)
        with pytest.raises(PlacementError):
            array.region(2)

    def test_occupancy(self):
        array = FPLArray.build(4, 500)
        assert array.occupancy() == 0.0
        array.region(0).load_static(bs())
        assert array.occupancy() == 0.25


class TestRegion:
    def test_load_static_returns_bytes(self):
        array = FPLArray.build(1, 500)
        assert array.region(0).load_static(bs()) == 512

    def test_oversized_circuit_rejected(self):
        array = FPLArray.build(1, 50)
        with pytest.raises(PlacementError):
            array.region(0).load_static(bs(clbs=100))

    def test_load_state_requires_static(self):
        array = FPLArray.build(1, 500)
        snapshot = bs().snapshot_state([1, 2])
        with pytest.raises(PlacementError):
            array.region(0).load_state(snapshot)

    def test_load_state_name_must_match(self):
        array = FPLArray.build(1, 500)
        region = array.region(0)
        region.load_static(bs("c1"))
        snapshot = bs("c2").snapshot_state([1, 2])
        with pytest.raises(PlacementError):
            region.load_state(snapshot)

    def test_load_state_returns_bytes(self):
        array = FPLArray.build(1, 500)
        region = array.region(0)
        stream = bs("c1")
        region.load_static(stream)
        moved = region.load_state(stream.snapshot_state([1, 2]))
        assert moved == stream.state_bytes

    def test_unload_frees_region(self):
        array = FPLArray.build(1, 500)
        region = array.region(0)
        region.load_static(bs())
        region.unload()
        assert region.is_free

    def test_find_resident(self):
        array = FPLArray.build(2, 500)
        array.region(1).load_static(bs("findme"))
        found = array.find_resident("findme")
        assert found is not None and found.index == 1
        assert array.find_resident("nope") is None
