"""Bitstream format: the static/state split of §4.1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BitstreamError
from repro.fabric.bitstream import (
    Bitstream,
    build_bitstream,
    flip_bit,
    parse_bitstream,
)


def sample(state_words: int = 4) -> Bitstream:
    return build_bitstream(
        name="sample",
        clb_count=100,
        state_words=state_words,
        static_bytes=1024,
        state_bytes=max(64, state_words * 4),
        seed=1,
    )


class TestConstruction:
    def test_sizes(self):
        bs = sample()
        assert bs.static_bytes == 1024
        assert bs.state_bytes == 64
        assert bs.total_bytes == 1088

    def test_stateful_flag(self):
        assert sample(4).is_stateful
        assert not sample(0).is_stateful

    def test_deterministic_static_section(self):
        assert sample().static_section == sample().static_section

    def test_different_names_differ(self):
        other = build_bitstream("other", 100, 0, 1024, 64)
        assert other.static_section != sample().static_section

    def test_rejects_zero_clbs(self):
        with pytest.raises(BitstreamError):
            build_bitstream("x", 0, 0, 16, 16)

    def test_rejects_empty_static(self):
        with pytest.raises(BitstreamError):
            build_bitstream("x", 1, 0, 0, 16)

    def test_rejects_undersized_state_section(self):
        with pytest.raises(BitstreamError):
            build_bitstream("x", 1, 8, 16, 16)


class TestStateMovement:
    def test_snapshot_restore_roundtrip(self):
        bs = sample(4)
        words = [1, 2, 0xFFFFFFFF, 0]
        snapshot = bs.snapshot_state(words)
        assert bs.restore_state(snapshot) == words

    def test_snapshot_size_is_declared_state_size(self):
        """State transfers move whole frames, so the cost is constant."""
        bs = sample(4)
        assert len(bs.snapshot_state([0, 0, 0, 0])) == bs.state_bytes
        assert len(bs.snapshot_state([9, 9, 9, 9])) == bs.state_bytes

    def test_snapshot_wrong_word_count(self):
        with pytest.raises(BitstreamError):
            sample(4).snapshot_state([1, 2])

    def test_restore_rejects_foreign_snapshot(self):
        other = build_bitstream("other", 100, 4, 1024, 64)
        snapshot = other.snapshot_state([1, 2, 3, 4])
        with pytest.raises(BitstreamError):
            sample(4).restore_state(snapshot)

    def test_state_is_far_smaller_than_static(self):
        """The point of the split: context switches move the small part."""
        bs = sample(4)
        assert bs.state_bytes * 10 < bs.static_bytes

    @given(
        words=st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=0,
            max_size=16,
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, words):
        bs = build_bitstream(
            "prop", 10, len(words), 256, max(32, len(words) * 4)
        )
        assert bs.restore_state(bs.snapshot_state(words)) == words


class TestSerialisation:
    def test_roundtrip(self):
        bs = sample()
        parsed = parse_bitstream(bs.serialise())
        assert parsed == bs

    def test_roundtrip_preserves_flags(self):
        bs = build_bitstream(
            "flagged", 10, 0, 64, 0, uses_iobs=True, mux_routing=False
        )
        parsed = parse_bitstream(bs.serialise())
        assert parsed.uses_iobs
        assert not parsed.mux_routing

    def test_truncated_rejected(self):
        blob = sample().serialise()
        with pytest.raises(BitstreamError):
            parse_bitstream(blob[:-10])

    def test_bad_magic_rejected(self):
        blob = bytearray(sample().serialise())
        blob[0] ^= 0xFF
        with pytest.raises(BitstreamError):
            parse_bitstream(bytes(blob))

    def test_corrupted_static_section_rejected(self):
        blob = bytearray(sample().serialise())
        blob[60] ^= 0x01  # somewhere inside the static payload
        with pytest.raises(BitstreamError):
            parse_bitstream(bytes(blob))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(BitstreamError):
            parse_bitstream(sample().serialise() + b"\x00")

    @given(
        static_bytes=st.integers(min_value=1, max_value=512),
        state_words=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, static_bytes, state_words, seed):
        bs = build_bitstream(
            "prop", 10, state_words, static_bytes,
            max(8, state_words * 4), seed=seed,
        )
        assert parse_bitstream(bs.serialise()) == bs


class TestSingleEventUpsets:
    """Any single-bit flip of a serialised image is detected, never
    silently parsed back as the original circuit (and never crashes
    with anything other than :class:`BitstreamError`)."""

    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_single_bit_flip_never_silent(self, data):
        state_words = data.draw(st.integers(0, 6), label="state_words")
        static_bytes = data.draw(st.integers(1, 256), label="static_bytes")
        seed = data.draw(st.integers(0, 100), label="seed")
        blob = build_bitstream(
            "seu", 10, state_words, static_bytes,
            max(8, state_words * 4), seed=seed,
        ).serialise()
        bit = data.draw(st.integers(0, len(blob) * 8 - 1), label="bit")

        corrupted = flip_bit(blob, bit)
        assert corrupted != blob
        try:
            parsed = parse_bitstream(corrupted)
        except BitstreamError:
            return  # detected — the expected outcome for this format
        # Tolerated only if the difference is *visible*: a parse that
        # reproduces the original bytes would be a silent corruption.
        assert parsed.serialise() != blob

    def test_every_bit_of_a_small_image(self):
        blob = build_bitstream("dense", 4, 1, 16, 8, seed=3).serialise()
        for bit in range(len(blob) * 8):
            with pytest.raises(BitstreamError):
                parse_bitstream(flip_bit(blob, bit))

    def test_flip_restores_on_double_application(self):
        blob = sample().serialise()
        assert flip_bit(flip_bit(blob, 77), 77) == blob

    @pytest.mark.parametrize("bit", [-1, 10**9])
    def test_flip_out_of_range(self, bit):
        with pytest.raises(BitstreamError):
            flip_bit(sample().serialise(), bit)
