"""CLB and LUT models."""

import pytest

from repro.errors import FabricError
from repro.fabric.clb import CLB, CLBColumn, LUT, LUTS_PER_CLB


class TestLUT:
    def test_constant_zero(self):
        lut = LUT(truth_table=0)
        assert all(lut.evaluate(i) == 0 for i in range(16))

    def test_constant_one(self):
        lut = LUT(truth_table=0xFFFF)
        assert all(lut.evaluate(i) == 1 for i in range(16))

    def test_and_gate(self):
        # Output 1 only when all four inputs are 1 (pattern 0b1111).
        lut = LUT(truth_table=1 << 15)
        assert lut.evaluate(0b1111) == 1
        assert lut.evaluate(0b0111) == 0

    def test_xor_gate(self):
        table = 0
        for pattern in range(16):
            parity = bin(pattern).count("1") & 1
            table |= parity << pattern
        lut = LUT(truth_table=table)
        assert lut.evaluate(0b0001) == 1
        assert lut.evaluate(0b0011) == 0
        assert lut.evaluate(0b0111) == 1

    def test_rejects_oversized_table(self):
        with pytest.raises(FabricError):
            LUT(truth_table=1 << 16)

    def test_rejects_out_of_range_input(self):
        with pytest.raises(FabricError):
            LUT().evaluate(16)

    def test_config_bits(self):
        assert LUT().config_bits() == 16


class TestCLB:
    def test_combinatorial_outputs(self):
        clb = CLB(luts=[LUT(truth_table=0xFFFF)] + [LUT()] * 3)
        outputs = clb.clock([0, 0, 0, 0])
        assert outputs == [1, 0, 0, 0]

    def test_registered_output_latches(self):
        clb = CLB(
            luts=[LUT(truth_table=0xFFFF)] + [LUT()] * 3,
            registered=[True, False, False, False],
        )
        clb.clock([0, 0, 0, 0])
        assert clb.state[0] == 1

    def test_state_bits_counts_registered_luts(self):
        clb = CLB(registered=[True, True, False, False])
        assert clb.state_bits() == 2

    def test_capture_restore_roundtrip(self):
        clb = CLB(registered=[True, False, True, False])
        clb.state = [1, 0, 1, 0]
        captured = clb.capture_state()
        assert captured == [1, 1]
        clb.state = [0, 0, 0, 0]
        clb.restore_state(captured)
        assert clb.state == [1, 0, 1, 0]

    def test_restore_wrong_length_rejected(self):
        clb = CLB(registered=[True, False, False, False])
        with pytest.raises(FabricError):
            clb.restore_state([1, 0])

    def test_restore_rejects_non_bits(self):
        clb = CLB(registered=[True, False, False, False])
        with pytest.raises(FabricError):
            clb.restore_state([2])

    def test_wrong_lut_count_rejected(self):
        with pytest.raises(FabricError):
            CLB(luts=[LUT()])

    def test_wrong_input_count_rejected(self):
        with pytest.raises(FabricError):
            CLB().clock([0, 0])

    def test_bad_initial_state_rejected(self):
        with pytest.raises(FabricError):
            CLB(state=[0, 0, 0, 9])


class TestCLBColumn:
    def test_blank_column(self):
        column = CLBColumn.blank(8)
        assert len(column) == 8
        assert column.state_bits() == 0

    def test_column_state_bits_sum(self):
        column = CLBColumn.blank(4)
        column.clbs[0].registered = [True] * LUTS_PER_CLB
        column.clbs[1].registered = [True, False, False, False]
        assert column.state_bits() == LUTS_PER_CLB + 1

    def test_blank_rejects_nonpositive_height(self):
        with pytest.raises(FabricError):
            CLBColumn.blank(0)
