"""Mux-based routing: the structurally-safe fabric of §4.1."""

import pytest

from repro.fabric.routing import Mux, MuxRouting, RouteError, RoutingGraph


def small_graph() -> RoutingGraph:
    graph = RoutingGraph()
    graph.add_primary_input("in0")
    graph.add_primary_input("in1")
    graph.add_mux("a", ["in0", "in1"])
    graph.add_mux("b", ["a", "in1"])
    return graph


class TestGraph:
    def test_duplicate_mux_rejected(self):
        graph = small_graph()
        with pytest.raises(RouteError):
            graph.add_mux("a", ["in0"])

    def test_primary_input_cannot_be_sink(self):
        graph = small_graph()
        with pytest.raises(RouteError):
            graph.add_mux("in0", ["a"])

    def test_sink_cannot_become_primary_input(self):
        graph = small_graph()
        with pytest.raises(RouteError):
            graph.add_primary_input("a")

    def test_mux_requires_sources(self):
        with pytest.raises(RouteError):
            Mux(sink="x", sources=())

    def test_mux_rejects_duplicate_sources(self):
        with pytest.raises(RouteError):
            Mux(sink="x", sources=("a", "a"))

    def test_unknown_sink(self):
        graph = small_graph()
        with pytest.raises(RouteError):
            graph.mux_for("zzz")

    def test_grid_shape(self):
        graph = RoutingGraph.grid(columns=3, rows=2)
        assert len(graph.primary_inputs) == 3
        assert len(graph.muxes) == 6


class TestRoutingConfiguration:
    def test_default_selection_is_first_source(self):
        routing = small_graph().configure()
        assert routing.source_of("a") == "in0"

    def test_select_changes_driver(self):
        routing = small_graph().configure()
        routing.select("a", "in1")
        assert routing.source_of("a") == "in1"

    def test_single_driver_invariant(self):
        """A sink has exactly one driver — short circuits are
        unrepresentable (the §4.1 security argument)."""
        routing = small_graph().configure()
        routing.select("a", "in0")
        routing.select("a", "in1")  # replaces, never adds
        assert routing.source_of("a") == "in1"

    def test_select_rejects_non_input(self):
        routing = small_graph().configure()
        with pytest.raises(RouteError):
            routing.select("a", "b")

    def test_trace_to_primary_input(self):
        routing = small_graph().configure()
        routing.select("b", "a")
        routing.select("a", "in1")
        assert routing.trace("b") == ["b", "a", "in1"]

    def test_trace_detects_loop(self):
        graph = RoutingGraph()
        graph.add_primary_input("in0")
        graph.add_mux("x", ["y", "in0"])
        graph.add_mux("y", ["x", "in0"])
        routing = graph.configure()
        routing.select("x", "y")
        routing.select("y", "x")
        with pytest.raises(RouteError):
            routing.trace("x")

    def test_config_bits_counted(self):
        routing = small_graph().configure()
        routing.select("a", "in1")
        routing.select("b", "a")
        # Both muxes have two sources: one bit each.
        assert routing.config_bits() == 2

    def test_grid_routes_column(self):
        graph = RoutingGraph.grid(columns=2, rows=3)
        routing = graph.configure()
        routing.select("c1_2", "c1_1")
        routing.select("c1_1", "c1_0")
        routing.select("c1_0", "in1")
        assert routing.trace("c1_2") == ["c1_2", "c1_1", "c1_0", "in1"]
