"""Bitstream security validation (paper §2, §4.1)."""

from repro.fabric.bitstream import build_bitstream
from repro.fabric.validate import SecurityPolicy, validate_bitstream

POLICY = SecurityPolicy(max_clbs=500, max_state_words=16)


def bs(**kwargs):
    defaults = dict(
        name="c", clb_count=100, state_words=4,
        static_bytes=1024, state_bytes=32,
    )
    defaults.update(kwargs)
    return build_bitstream(**defaults)


class TestValidation:
    def test_clean_bitstream_passes(self):
        report = validate_bitstream(bs(), POLICY)
        assert report.ok
        assert report.violations == []

    def test_iob_usage_rejected(self):
        """No IOBs on the Proteus fabric — the FPGA-virus vector."""
        report = validate_bitstream(bs(uses_iobs=True), POLICY)
        assert not report.ok
        assert any("IOB" in v for v in report.violations)

    def test_iob_allowed_when_policy_permits(self):
        policy = SecurityPolicy(max_clbs=500, allow_iobs=True)
        assert validate_bitstream(bs(uses_iobs=True), policy).ok

    def test_non_mux_routing_rejected(self):
        report = validate_bitstream(bs(mux_routing=False), POLICY)
        assert not report.ok
        assert any("mux" in v for v in report.violations)

    def test_clb_budget_enforced(self):
        report = validate_bitstream(bs(clb_count=501), POLICY)
        assert not report.ok
        assert any("CLB" in v for v in report.violations)

    def test_state_word_budget_enforced(self):
        report = validate_bitstream(
            bs(state_words=17, state_bytes=96), POLICY
        )
        assert not report.ok

    def test_oversized_static_rejected(self):
        policy = SecurityPolicy(max_clbs=500, max_static_bytes=512)
        report = validate_bitstream(bs(static_bytes=1024), policy)
        assert not report.ok

    def test_multiple_violations_accumulate(self):
        report = validate_bitstream(
            bs(uses_iobs=True, mux_routing=False, clb_count=501), POLICY
        )
        assert len(report.violations) == 3

    def test_report_names_bitstream(self):
        report = validate_bitstream(bs(name="suspect"), POLICY)
        assert report.bitstream_name == "suspect"
