"""Failure injection: hostile programs, corrupted images, runaways.

The OS-facing promises of §2 (security, timely progress, fair sharing)
are only as good as the failure handling; these tests drive the kernel
with misbehaving inputs and check it degrades by killing the offender,
never by corrupting neighbours or wedging.
"""

import pytest

from conftest import adder_spec
from repro.apps.registry import get_workload
from repro.core.circuit import CircuitSpec, FunctionBehaviour
from repro.cpu.program import Program
from repro.errors import BitstreamError
from repro.fabric.bitstream import parse_bitstream
from repro.kernel.porsche import Porsche
from repro.kernel.process import ProcessState


def spawn(kernel, source, circuits=()):
    return kernel.spawn(
        Program.from_source("hostile", source, circuit_table=list(circuits))
    )


class TestHostilePrograms:
    def test_wild_pointer_store(self, kernel):
        victim = spawn(kernel, "MOV r0, #0x4000000\nSTR r1, [r0]\nHALT")
        bystander = spawn(kernel, "MOV r0, #3\nSWI #0")
        kernel.run()
        assert victim.state is ProcessState.KILLED
        assert bystander.state is ProcessState.EXITED
        assert bystander.exit_status == 3

    def test_null_pointer_read(self, kernel):
        process = spawn(kernel, "MOV r0, #0\nLDRB r1, [r0]\nHALT")
        kernel.run()
        assert process.state is ProcessState.KILLED
        assert "guard" in process.kill_reason

    def test_unaligned_word_access(self, kernel):
        process = spawn(kernel, "MOV r0, #0x1001\nLDR r1, [r0]\nHALT")
        kernel.run()
        assert process.state is ProcessState.KILLED
        assert "unaligned" in process.kill_reason

    def test_runaway_loop_is_preempted_not_wedged(self, kernel):
        runaway = spawn(kernel, "spin: B spin")
        worker = spawn(kernel, "MOV r0, #1\nSWI #0")
        kernel.run(max_cycles=50_000)
        assert worker.state is ProcessState.EXITED
        assert runaway.alive  # still spinning, still schedulable

    def test_falling_off_the_end(self, kernel):
        process = spawn(kernel, "NOP\nNOP")
        kernel.run()
        assert process.state is ProcessState.KILLED
        assert "outside program" in process.kill_reason

    def test_bx_garbage(self, kernel):
        process = spawn(kernel, "MOV r0, #12\nBX r0\nHALT")
        kernel.run()
        assert process.state is ProcessState.KILLED

    def test_sto_without_dispatch(self, kernel):
        """Driving the operand registers outside a software dispatch is
        an illegal use of the hardware: fatal to the process."""
        process = spawn(kernel, "MOV r0, #1\nSTO r0\nHALT")
        kernel.run()
        assert process.state is ProcessState.KILLED

    def test_ldo_without_dispatch(self, kernel):
        process = spawn(kernel, "LDO r0, #0\nHALT")
        kernel.run()
        assert process.state is ProcessState.KILLED


class TestHostileCircuits:
    def test_iob_bitstream_rejected_at_registration(self, kernel):
        """The §2/§4.1 security check: a bitstream claiming IOB access
        (the FPGA-virus vector) never reaches the fabric."""
        spec = adder_spec("virus")
        process = spawn(
            kernel,
            "main:\n  MOV r0, #1\n  MOV r1, #0\n  MOV r2, #0\n  SWI #1\n  HALT",
            circuits=[spec],
        )
        # Corrupt the generated image to claim IOB usage by monkeypatching
        # the spec's builder.
        original = CircuitSpec.build_bitstream

        def hostile(self, config, seed=0):
            bitstream = original(self, config, seed)
            object.__setattr__(bitstream, "uses_iobs", True)
            return bitstream

        CircuitSpec.build_bitstream = hostile
        try:
            kernel.run()
        finally:
            CircuitSpec.build_bitstream = original
        assert process.state is ProcessState.KILLED
        assert "IOB" in process.kill_reason
        # Nothing was loaded.
        assert kernel.cis.stats.loads == 0

    def test_oversized_state_rejected(self, kernel):
        greedy = CircuitSpec(
            name="greedy",
            behaviour=FunctionBehaviour(fn=lambda a, b, s: 0),
            clb_count=10,
            app_state_words=100,  # beyond the CIS security policy
            initial_state=(0,) * 100,
        )
        process = spawn(
            kernel,
            "main:\n  MOV r0, #1\n  MOV r1, #0\n  MOV r2, #0\n  SWI #1\n  HALT",
            circuits=[greedy],
        )
        kernel.run()
        assert process.state is ProcessState.KILLED
        assert "state words" in process.kill_reason


class TestCorruptedBitstreams:
    def test_every_corrupted_byte_is_detected(self):
        """Flipping any single byte of a serialised bitstream must fail
        parsing (header validation or section checksum)."""
        from repro.config import MachineConfig

        blob = bytearray(
            adder_spec().build_bitstream(MachineConfig()).serialise()
        )
        # Sample positions across header, name, checksums and payloads.
        for position in [0, 5, 10, 20, 25, 40, len(blob) // 2, len(blob) - 1]:
            corrupted = bytearray(blob)
            corrupted[position] ^= 0xA5
            with pytest.raises(BitstreamError):
                parse_bitstream(bytes(corrupted))


class TestIsolationUnderFailure:
    def test_killed_process_frees_its_pfus(self, kernel):
        workload = get_workload("alpha")
        doomed = spawn(
            kernel,
            """
            main:
                MOV r0, #1
                MOV r1, #0
                MOV r2, #0
                SWI #1
                MOV r0, #5
                MOV r1, #6
                MCR f0, r0
                MCR f1, r1
                CDP #1, f2, f0, f1     ; loads the circuit
                MOV r0, #0
                LDR r1, [r0]           ; then segfaults
                HALT
            """,
            circuits=[adder_spec()],
        )
        kernel.run()
        assert doomed.state is ProcessState.KILLED
        assert len(kernel.coprocessor.pfus.free_pfus()) == (
            kernel.config.pfu_count
        )
        # A new process can use the full array.
        survivor = kernel.spawn(workload.build(items=8, seed=0))
        kernel.run()
        assert survivor.state is ProcessState.EXITED

    def test_mixed_good_and_bad_processes(self, kernel):
        workload = get_workload("alpha")
        bad = [
            spawn(kernel, "CDP #5, f0, f0, f0\nHALT"),
            spawn(kernel, "MOV r0, #0\nLDR r1, [r0]\nHALT"),
            spawn(kernel, "SWI #77\nHALT"),
        ]
        good = [kernel.spawn(workload.build(items=16, seed=1)) for __ in range(2)]
        kernel.run()
        assert all(p.state is ProcessState.KILLED for p in bad)
        expected = workload.expected(16, seed=1)
        for process in good:
            assert process.state is ProcessState.EXITED
            assert process.read_result("dst") == expected
