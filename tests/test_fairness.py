"""Fairness and conservation properties of the whole system.

§2 requires the OS to share the FPL "dynamically, fairly, and securely,
ensuring all applications make timely progress".  These are system-level
properties, checked over whole runs with hypothesis-chosen parameters.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.registry import get_workload
from repro.config import MachineConfig
from repro.kernel.porsche import Porsche
from repro.kernel.process import ProcessState

BASE = MachineConfig(
    cycles_per_ms=1000,
    quantum_ms=0.2,
    config_bus_bytes_per_cycle=512,
    # Kernel costs scaled along with the clock (as scaled_config does);
    # otherwise context-switch overhead dwarfs the 200-cycle quanta.
    context_switch_cycles=10,
    fault_entry_cycles=5,
    tlb_update_cycles=2,
    cis_decision_cycles=5,
    syscall_cycles=5,
)


class TestFairness:
    def test_identical_processes_finish_close_together(self):
        """Round-robin scheduling: equal workloads complete within one
        another's final quantum, not sequentially."""
        kernel = Porsche(BASE)
        workload = get_workload("alpha")
        processes = [kernel.spawn(workload.build(items=64, seed=1))
                     for __ in range(4)]
        kernel.run()
        completions = sorted(p.completion_cycle for p in processes)
        spread = completions[-1] - completions[0]
        assert spread < completions[0] * 0.5

    def test_contended_processes_all_make_progress(self):
        """Even with 6 circuits fighting over 4 PFUs, nobody starves."""
        kernel = Porsche(BASE.derive(quantum_ms=0.1))
        workload = get_workload("alpha")
        processes = [kernel.spawn(workload.build(items=48, seed=1))
                     for __ in range(6)]
        kernel.run(max_cycles=20_000_000)
        assert all(p.state is ProcessState.EXITED for p in processes)

    @given(
        counts=st.tuples(
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=1, max_value=3),
        ),
        quantum_ms=st.sampled_from([0.05, 0.2, 1.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_mixed_sizes_all_complete_and_verify(self, counts, quantum_ms):
        kernel = Porsche(BASE.derive(quantum_ms=quantum_ms))
        workload = get_workload("alpha")
        small = [kernel.spawn(workload.build(items=16, seed=2))
                 for __ in range(counts[0])]
        large = [kernel.spawn(workload.build(items=48, seed=3))
                 for __ in range(counts[1])]
        kernel.run(max_cycles=100_000_000)
        expected_small = workload.expected(16, seed=2)
        expected_large = workload.expected(48, seed=3)
        for process in small:
            assert process.read_result("dst") == expected_small
        for process in large:
            assert process.read_result("dst") == expected_large


class TestConservation:
    def test_clock_is_monotone_across_quanta(self):
        kernel = Porsche(BASE)
        workload = get_workload("alpha")
        kernel.spawn(workload.build(items=32, seed=0))
        kernel.spawn(workload.build(items=32, seed=0))
        last = 0
        while kernel.run_quantum():
            assert kernel.clock >= last
            last = kernel.clock

    def test_completion_cycles_do_not_exceed_final_clock(self):
        kernel = Porsche(BASE)
        workload = get_workload("echo")
        processes = [kernel.spawn(workload.build(items=24, seed=0))
                     for __ in range(3)]
        kernel.run()
        for process in processes:
            assert process.completion_cycle <= kernel.clock

    def test_pfu_busy_cycles_bounded_by_clock(self):
        """No PFU can have been busy longer than the machine existed."""
        kernel = Porsche(BASE.derive(quantum_ms=0.1))
        workload = get_workload("twofish")
        for __ in range(2):
            kernel.spawn(workload.build(items=4, seed=5))
        kernel.run()
        for pfu in kernel.coprocessor.pfus:
            assert pfu.total_busy_cycles <= kernel.clock

    def test_makespan_additivity_serial_vs_concurrent(self):
        """Total work is conserved: running two processes concurrently
        takes at least as long as the longer one alone and no more than
        the serial sum plus management overhead."""
        workload = get_workload("alpha")

        def solo() -> int:
            kernel = Porsche(BASE)
            kernel.spawn(workload.build(items=64, seed=4))
            kernel.run()
            return kernel.clock

        single = solo()
        kernel = Porsche(BASE)
        kernel.spawn(workload.build(items=64, seed=4))
        kernel.spawn(workload.build(items=64, seed=4))
        kernel.run()
        concurrent = kernel.clock
        assert single < concurrent
        assert concurrent < 2 * single * 1.25
