"""Fault injection and kernel recovery (dependability campaigns).

The injector must be deterministic (same plan, same upsets, across exec
tiers, worker counts, and checkpoint/resume), invisible when disabled,
and the kernel must survive every injected fault under the fallback
policy without killing a process.
"""

import json
from dataclasses import replace

import pytest

from repro.config import MachineConfig
from repro.errors import ReproError
from repro.faults import (
    FAULT_KINDS,
    RECOVERY_POLICIES,
    FaultInjector,
    FaultPlan,
    plan_from_dict,
    plan_to_dict,
)
from repro.kernel.porsche import Porsche
from repro.machine import Machine, _spec_from_dict, _spec_to_dict
from repro.sim.campaign import (
    CampaignConfig,
    campaign_specs,
    render_campaign,
    run_campaign,
)
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.runner import SweepRunner

SCALE = 0.000125

#: A hostile-environment plan exercising every fault kind and detector.
NOISY = FaultPlan(
    seed=9,
    config_upset_rate=0.05,
    datapath_error_rate=0.05,
    transfer_error_rate=0.1,
    state_upset_rate=0.1,
    scrub_interval_quanta=8,
)


def fault_spec(plan, instances=3, seed=2, **overrides):
    return ExperimentSpec(
        workload="alpha",
        instances=instances,
        quantum_ms=1.0,
        scale=SCALE,
        seed=seed,
        fault_plan=plan,
        **overrides,
    )


class TestFaultPlan:
    def test_defaults_are_disabled(self):
        assert not FaultPlan().enabled

    def test_any_rate_enables(self):
        assert FaultPlan(config_upset_rate=0.1).enabled
        assert FaultPlan(schedule=((3, "datapath"),)).enabled

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_validated(self, rate):
        with pytest.raises(ReproError):
            FaultPlan(config_upset_rate=rate)

    def test_recovery_validated(self):
        with pytest.raises(ReproError):
            FaultPlan(recovery="pray")

    def test_schedule_kind_validated(self):
        with pytest.raises(ReproError):
            FaultPlan(schedule=((0, "gamma_ray"),))

    def test_dict_roundtrip(self):
        plan = FaultPlan(
            seed=4, schedule=((1, "config"), (5, "datapath")),
            recovery="quarantine", transfer_error_rate=0.25,
        )
        rebuilt = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        assert rebuilt == plan

    def test_policy_and_kind_tables(self):
        assert RECOVERY_POLICIES == ("reload", "fallback", "quarantine")
        assert FAULT_KINDS == ("config", "datapath")


class TestInjectorDeterminism:
    def test_same_seed_same_stream(self, coprocessor):
        draws = []
        for _ in range(2):
            injector = FaultInjector(FaultPlan(seed=3, transfer_error_rate=0.5))
            draws.append([injector.transfer_fails() for _ in range(32)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_zero_rates_draw_nothing(self, coprocessor):
        injector = FaultInjector(FaultPlan(seed=3))
        before = injector.rng.getstate()
        injector.advance_quantum(coprocessor)
        assert not injector.transfer_fails()
        assert injector.rng.getstate() == before

    def test_snapshot_restore_roundtrip(self, coprocessor):
        injector = FaultInjector(
            FaultPlan(seed=5, config_upset_rate=0.5, datapath_error_rate=0.5)
        )
        for _ in range(4):
            injector.advance_quantum(coprocessor)
        injector.upsets[2] = 0xDEAD
        injector.strike(1)
        injector.quarantine(3)
        state = json.loads(json.dumps(injector.snapshot()))

        clone = FaultInjector(injector.plan)
        clone.restore(state)
        assert clone.snapshot() == injector.snapshot()
        assert [clone.transfer_fails() for _ in range(8)] == [
            injector.transfer_fails() for _ in range(8)
        ]

    def test_quarantine_clears_live_faults(self):
        injector = FaultInjector(FaultPlan())
        injector.upsets[1] = 7
        injector.armed[1] = 9
        injector.quarantine(1)
        assert injector.is_quarantined(1)
        assert injector.completion_effect(1) is None
        assert injector.upset_regions() == []

    def test_completion_effect_consumes_datapath_not_config(self):
        injector = FaultInjector(FaultPlan())
        injector.armed[0] = 5
        injector.upsets[0] = 6
        assert injector.completion_effect(0) == ("datapath", 5)
        assert injector.completion_effect(0) == ("config", 6)
        assert injector.completion_effect(0) == ("config", 6)


class TestDisabledPlanInvariance:
    def test_spec_key_has_no_fault_plan_when_none(self):
        spec = ExperimentSpec("alpha", 2)
        assert spec.fault_plan is None
        # The key hashes a payload with the null field removed, so it is
        # byte-identical to keys minted before fault injection existed —
        # and a cached result minted then still hits now.
        keyed = ExperimentSpec("alpha", 2, fault_plan=FaultPlan())
        assert keyed.spec_key() != spec.spec_key()

    def test_checkpoint_spec_dict_omits_null_plan(self):
        spec = ExperimentSpec("alpha", 2)
        payload = _spec_to_dict(spec)
        assert "fault_plan" not in payload
        assert _spec_from_dict(payload) == spec

    def test_spec_dict_roundtrips_plan(self):
        spec = fault_spec(NOISY)
        payload = json.loads(json.dumps(_spec_to_dict(spec)))
        assert _spec_from_dict(payload) == spec
        assert _spec_from_dict(payload).spec_key() == spec.spec_key()

    def test_disabled_run_reports_no_fault_metrics(self):
        outcome = run_experiment(
            ExperimentSpec("alpha", 1, quantum_ms=1.0, scale=SCALE),
            verify=True,
        )
        assert outcome.faults == {}


class TestInjectedRuns:
    def test_same_plan_bit_identical(self):
        first = run_experiment(fault_spec(NOISY), verify=True)
        second = run_experiment(fault_spec(NOISY), verify=True)
        assert first == second
        assert sum(first.faults["injected"].values()) > 0

    def test_schedule_only_plan_is_exact(self):
        plan = FaultPlan(seed=1, schedule=((6, "config"), (8, "datapath")))
        outcome = run_experiment(fault_spec(plan), verify=True)
        injected = outcome.faults["injected"]
        assert injected.get("config", 0) == 1
        assert injected.get("datapath", 0) == 1

    def test_bit_identical_across_exec_tiers(self):
        plan = replace(NOISY, recovery="quarantine", quarantine_strikes=2)
        results = []
        for tier in ("block", "closure", "step"):
            spec = fault_spec(plan)
            machine = Machine.from_spec(spec)
            machine.kernel = Porsche(
                replace(spec.build_config(), exec_tier=tier)
            )
            machine._instances_spawned = 0
            machine.spawn_instances()
            machine.run()
            outcome = machine.outcome(verify=True)
            results.append(
                (outcome.makespan, outcome.completions, outcome.faults)
            )
        assert results[0] == results[1] == results[2]

    def test_bit_identical_across_jobs(self):
        specs = [fault_spec(NOISY, seed=s) for s in (0, 1, 2, 3)]
        serial = SweepRunner(jobs=1).run(specs, verify=True)
        parallel = SweepRunner(jobs=4).run(specs, verify=True)
        assert serial == parallel

    def test_checkpoint_resume_bit_identical(self):
        spec = fault_spec(replace(NOISY, recovery="fallback"))
        straight = run_experiment(spec, verify=True)

        machine = Machine.from_spec(spec)
        machine.spawn_instances()
        machine.run_quanta(16)
        checkpoint = json.loads(json.dumps(machine.checkpoint()))
        resumed = Machine.resume(checkpoint)
        resumed.run()
        assert resumed.outcome(verify=True) == straight

    def test_metrics_shape(self):
        outcome = run_experiment(fault_spec(NOISY), verify=True)
        faults = outcome.faults
        for key in (
            "injected", "detected", "recovered", "quarantined",
            "recovery_cycles", "mean_recovery_latency",
            "silent_corruptions", "state_corruptions",
            "killed", "wrong_outputs", "availability",
        ):
            assert key in faults
        assert 0.0 < faults["availability"] <= 1.0


class TestRecoveryPolicies:
    def test_fallback_never_kills(self):
        # The acceptance bar: under the fallback policy every injected
        # fault degrades to the software alternative, never to a kill.
        plan = replace(NOISY, recovery="fallback")
        for seed in range(4):
            outcome = run_experiment(fault_spec(plan, seed=seed), verify=True)
            assert outcome.faults["killed"] == 0
            assert all(cycle > 0 for cycle in outcome.completions)

    def test_reload_repairs_config_upsets(self):
        plan = FaultPlan(
            seed=2, config_upset_rate=0.2, scrub_interval_quanta=4,
            recovery="reload",
        )
        outcome = run_experiment(fault_spec(plan), verify=True)
        faults = outcome.faults
        assert faults["recovered"].get("reload", 0) > 0
        assert faults["quarantined"] == 0

    def test_quarantine_retires_striking_pfus(self):
        plan = replace(
            NOISY, recovery="quarantine", quarantine_strikes=1,
            config_upset_rate=0.2,
        )
        spec = fault_spec(plan)
        machine = Machine.from_spec(spec)
        machine.spawn_instances()
        machine.run()
        outcome = machine.outcome(verify=True)
        assert outcome.faults["quarantined"] > 0
        injector = machine.kernel.injector
        bank = machine.kernel.coprocessor.pfus
        # A quarantined PFU is retired for good: nothing may be resident.
        for index in injector.quarantined:
            assert not bank.pfu(index).configured
        assert outcome.faults["killed"] == 0

    def test_all_quarantined_degrades_to_software(self):
        # Even with the whole fabric retired, alpha's software
        # alternative keeps every process running.
        spec = fault_spec(FaultPlan(seed=1), instances=2)
        machine = Machine.from_spec(spec)
        injector = machine.kernel.injector
        assert injector is not None
        for pfu in machine.kernel.coprocessor.pfus:
            injector.quarantine(pfu.index)
        machine.spawn_instances()
        machine.run()
        outcome = machine.outcome(verify=True)
        assert outcome.faults["killed"] == 0
        assert all(
            not pfu.configured for pfu in machine.kernel.coprocessor.pfus
        )

    def test_transfer_retries_are_bounded(self):
        # Every transfer fails; the kernel must give up after the bounded
        # retries (accepting a corrupt image) instead of spinning forever.
        plan = FaultPlan(
            seed=3, transfer_error_rate=1.0, max_load_retries=2,
            scrub_interval_quanta=4, recovery="reload",
        )
        outcome = run_experiment(fault_spec(plan, instances=1), verify=True)
        faults = outcome.faults
        assert faults["injected"].get("transfer", 0) > 0
        assert faults["detected"].get("scrub", 0) > 0

    def test_parity_off_makes_datapath_faults_silent(self):
        plan = FaultPlan(seed=4, datapath_error_rate=0.3, parity_check=False)
        outcome = run_experiment(fault_spec(plan), verify=True)
        faults = outcome.faults
        assert faults["detected"].get("parity", 0) == 0
        assert faults["silent_corruptions"] > 0


class TestCampaign:
    def config(self, **overrides):
        values = dict(
            workload="alpha", instances=2, trials=2, scale=SCALE,
            quantum_ms=1.0, seed=7,
        )
        values.update(overrides)
        return CampaignConfig(**values)

    def test_specs_policy_major(self):
        config = self.config()
        specs = campaign_specs(config)
        assert len(specs) == len(config.policies) * config.trials
        assert [s.fault_plan.recovery for s in specs] == [
            "reload", "reload", "fallback", "fallback",
            "quarantine", "quarantine",
        ]
        # Distinct injector stream per trial, distinct data per trial.
        assert len({s.fault_plan.seed for s in specs}) == config.trials
        assert {s.seed for s in specs} == {0, 1}

    def test_bad_policy_rejected(self):
        with pytest.raises(Exception):
            self.config(policies=("reboot",))

    def test_csv_deterministic_across_runs(self):
        config = self.config(trials=1, policies=("fallback",))
        first = run_campaign(config, SweepRunner())
        second = run_campaign(config, SweepRunner())
        assert first.to_csv() == second.to_csv()
        assert first.to_csv().count("\n") == 1  # header + one row

    def test_report_aggregates_per_policy(self):
        config = self.config(policies=("reload", "fallback"))
        report = run_campaign(config, SweepRunner())
        summary = report.by_policy()
        assert list(summary) == ["reload", "fallback"]
        assert summary["fallback"]["killed"] == 0
        assert all(agg["trials"] == 2 for agg in summary.values())
        rendered = render_campaign(report)
        assert "reload" in rendered and "fallback" in rendered


class TestConfigPlumbing:
    def test_config_carries_plan(self):
        config = MachineConfig(fault_plan=NOISY)
        kernel = Porsche(config)
        assert kernel.injector is not None
        assert kernel.injector.plan == NOISY
        assert kernel.coprocessor.injector is kernel.injector

    def test_no_plan_no_injector(self, kernel):
        assert kernel.injector is None
        assert kernel.coprocessor.injector is None
