"""Figure regeneration machinery and rendering."""

import pytest

from repro.errors import ExperimentError
from repro.sim.figures import (
    contention_knees,
    figure2,
    figure3,
    prefetch_sweep,
    speedup_table,
)
from repro.sim.report import render_figure, render_speedup, render_table
from repro.sim.series import FigureData, Series, SeriesPoint

SCALE = 1 / 8000


class TestSeries:
    def test_add_and_access(self):
        series = Series(label="x")
        series.add(1, 100, note="a")
        series.add(2, 210)
        assert series.xs() == [1, 2]
        assert series.ys() == [100, 210]
        assert series.y_at(2) == 210

    def test_y_at_missing(self):
        with pytest.raises(ExperimentError):
            Series(label="x").y_at(1)

    def test_knee_detection(self):
        series = Series(label="x")
        for n, y in [(1, 100), (2, 200), (3, 300), (4, 400), (5, 700)]:
            series.add(n, y)
        assert series.knee() == 5

    def test_no_knee_when_linear(self):
        series = Series(label="x")
        for n in range(1, 9):
            series.add(n, 100 * n)
        assert series.knee() is None

    def test_knee_requires_x1_baseline(self):
        series = Series(label="x")
        series.add(3, 100)
        assert series.knee() is None


class TestFigureData:
    def figure(self):
        figure = FigureData(name="f", title="T", xlabel="x", ylabel="y")
        series = Series(label="a")
        series.add(1, 10, extra=1)
        series.add(2, 30)
        figure.series.append(series)
        return figure

    def test_series_by_label(self):
        assert self.figure().series_by_label("a").label == "a"
        with pytest.raises(ExperimentError):
            self.figure().series_by_label("zzz")

    def test_to_rows(self):
        rows = self.figure().to_rows()
        assert rows[0] == {"series": "a", "x": 1, "y": 10, "extra": 1}

    def test_to_csv_header_order(self):
        csv = self.figure().to_csv()
        header = csv.splitlines()[0].split(",")
        assert header[:3] == ["series", "x", "y"]
        assert len(csv.splitlines()) == 3

    def test_empty_csv(self):
        assert FigureData(name="f", title="T", xlabel="x", ylabel="y").to_csv() == ""

    def test_to_csv_quotes_comma_labels(self):
        import csv as csv_module
        import io

        figure = FigureData(name="f", title="T", xlabel="x", ylabel="y")
        series = Series(label="Echo, Round Robin, 10ms")
        series.add(1, 10)
        figure.series.append(series)
        text = figure.to_csv()
        rows = list(csv_module.reader(io.StringIO(text)))
        assert all(len(row) == len(rows[0]) for row in rows)
        assert rows[1][0] == "Echo, Round Robin, 10ms"


class TestRendering:
    def test_render_table_contains_values(self):
        text = render_table(self.sample())
        assert "1,234" in text and "Sample" in text

    def test_render_figure_plots_symbols(self):
        text = render_figure(self.sample())
        assert "o" in text
        assert "series-one" in text

    def test_render_figure_empty(self):
        figure = FigureData(name="f", title="Empty", xlabel="x", ylabel="y")
        assert "no data" in render_figure(figure)

    def sample(self) -> FigureData:
        figure = FigureData(
            name="s", title="Sample", xlabel="instances", ylabel="cycles"
        )
        series = Series(label="series-one")
        series.add(1, 1234)
        series.add(2, 2600)
        figure.series.append(series)
        return figure


class TestFigure2:
    @pytest.fixture(scope="class")
    def small_fig2(self):
        return figure2(
            scale=SCALE,
            instances=(1, 2, 5),
            workloads=("alpha",),
            quanta=(1.0,),
            policies=("round_robin", "random"),
        )

    def test_series_labels_match_paper_legend(self, small_fig2):
        assert "Alpha, Round Robin, 1ms" in small_fig2.labels()
        assert "Alpha, Random, 1ms" in small_fig2.labels()

    def test_each_series_has_all_points(self, small_fig2):
        for series in small_fig2.series:
            assert series.xs() == [1, 2, 5]

    def test_completion_grows_with_instances(self, small_fig2):
        for series in small_fig2.series:
            ys = series.ys()
            assert ys[0] < ys[1] < ys[2]

    def test_contention_detail_attached(self, small_fig2):
        point = small_fig2.series[0].points[-1]  # 5 instances, 4 PFUs
        assert point.detail["evictions"] > 0


class TestFigure3:
    def test_soft_series_present(self):
        figure = figure3(
            scale=SCALE,
            instances=(1, 5),
            workloads=("alpha",),
            quanta=(1.0,),
        )
        assert "Alpha, Soft, 1ms" in figure.labels()
        assert "Alpha, Round Robin, 1ms" in figure.labels()
        knees = contention_knees(figure)
        assert set(knees) == set(figure.labels())


class TestPrefetchSweep:
    def test_baseline_and_prefetch_series(self):
        figure = prefetch_sweep(
            scale=SCALE,
            instances=(1, 3),
            workloads=("phases",),
            quanta=(1.0,),
        )
        labels = figure.labels()
        assert "Phases, Baseline, 1ms" in labels
        assert "Phases, Prefetch, 1ms" in labels
        for series in figure.series:
            assert series.xs() == [1, 3]

    def test_prefetch_wins_past_the_knee(self):
        """At 5 instances (10 circuits on 4 PFUs) the predictive layer
        must beat the reactive baseline outright."""
        figure = prefetch_sweep(
            scale=SCALE,
            instances=(5,),
            workloads=("burst",),
            quanta=(1.0,),
        )
        base = figure.series_by_label("Burst, Baseline, 1ms").y_at(5)
        on = figure.series_by_label("Burst, Prefetch, 1ms").y_at(5)
        assert on < base


class TestSpeedupTable:
    def test_factors_reported(self):
        figure = speedup_table(scale=SCALE, workloads=("alpha",))
        series = figure.series_by_label("alpha")
        assert series.y_at(2) > series.y_at(1)
        assert series.points[-1].detail["speedup"] > 2.0
        text = render_speedup(figure)
        assert "alpha" in text and "x" in text
