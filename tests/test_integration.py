"""End-to-end integration: the architectural behaviours of §4 observed
through whole-system runs."""

import pytest

from repro.apps.registry import get_workload
from repro.config import MachineConfig
from repro.kernel.porsche import Porsche
from repro.kernel.process import ProcessState
from repro.kernel.replacement import make_policy
from repro.sim.experiment import ExperimentSpec, run_experiment

SCALE = 1 / 8000
FAST = MachineConfig(
    cycles_per_ms=1000, quantum_ms=0.5, config_bus_bytes_per_cycle=512
)


class TestLongInstructionInterruption:
    def test_twofish_encrypt_spans_quanta_transparently(self):
        """With an 18-cycle encrypt phase and a tiny quantum, CDPs are
        regularly cut by the timer; results must still be exact (§4.4)."""
        config = FAST.derive(quantum_ms=0.025)  # 25-cycle quanta
        kernel = Porsche(config)
        workload = get_workload("twofish")
        a = kernel.spawn(workload.build(items=4, seed=7))
        b = kernel.spawn(workload.build(items=4, seed=7))
        kernel.run()
        expected = workload.expected(4, seed=7)
        assert a.read_result("dst") == expected
        assert b.read_result("dst") == expected
        assert kernel.stats.timer_interrupts > 10

    def test_mid_instruction_eviction_and_resume(self):
        """A circuit evicted while an invocation is in flight must finish
        correctly after reload (state section carries the context)."""
        config = FAST.derive(pfu_count=1, quantum_ms=0.02)
        kernel = Porsche(config, make_policy("round_robin"))
        workload = get_workload("twofish")
        a = kernel.spawn(workload.build(items=3, seed=1, register_soft=False))
        b = kernel.spawn(workload.build(items=3, seed=1, register_soft=False))
        kernel.run()
        expected = workload.expected(3, seed=1)
        assert a.read_result("dst") == expected
        assert b.read_result("dst") == expected
        assert kernel.cis.stats.evictions > 0


class TestContextSwitchTransparency:
    def test_no_mapping_faults_without_contention(self):
        """The PID-tagged TLB means context switches alone never cost a
        dispatch fault — the paper's core claim vs. PRISC."""
        kernel = Porsche(FAST)
        workload = get_workload("alpha")
        for __ in range(3):  # 3 processes, 4 PFUs: no contention
            kernel.spawn(workload.build(items=48, seed=0))
        kernel.run()
        assert kernel.stats.context_switches > 3
        assert kernel.cis.stats.mapping_faults == 0
        assert kernel.cis.stats.loads == 3  # one per process, ever

    def test_fpl_registers_are_per_process(self):
        """Two processes interleave MCR/CDP/MRC sequences; the saved
        coprocessor context keeps their register files apart."""
        kernel = Porsche(FAST.derive(quantum_ms=0.05))
        workload = get_workload("alpha")
        a = kernel.spawn(workload.build(items=64, seed=3))
        b = kernel.spawn(workload.build(items=64, seed=3))
        kernel.run()
        expected = workload.expected(64, seed=3)
        assert a.read_result("dst") == expected
        assert b.read_result("dst") == expected


class TestMixedWorkloads:
    def test_all_three_applications_concurrently(self):
        kernel = Porsche(FAST.derive(quantum_ms=0.2))
        processes = {}
        for name, items in (("alpha", 24), ("echo", 24), ("twofish", 3)):
            workload = get_workload(name)
            processes[name] = (
                kernel.spawn(workload.build(items=items, seed=2)),
                workload.expected(items, seed=2),
                workload,
            )
        kernel.run()
        for name, (process, expected, workload) in processes.items():
            assert process.state is ProcessState.EXITED, name
            assert process.read_result(workload.result_name) == expected, name

    def test_four_circuits_fill_the_array(self):
        """alpha (1) + echo (2) + twofish (1) = exactly 4 PFUs: all
        loaded, nothing evicted."""
        kernel = Porsche(FAST.derive(quantum_ms=0.2))
        for name, items in (("alpha", 24), ("echo", 24), ("twofish", 3)):
            kernel.spawn(get_workload(name).build(items=items, seed=2))
        kernel.run()
        assert kernel.cis.stats.loads == 4
        assert kernel.cis.stats.evictions == 0

    def test_fifth_circuit_forces_management(self):
        # Workloads sized so that all four processes overlap for many
        # quanta: the fifth circuit must steal a PFU from someone.
        kernel = Porsche(FAST.derive(quantum_ms=0.2))
        for name, items in (("alpha", 192), ("echo", 192), ("twofish", 24)):
            kernel.spawn(get_workload(name).build(items=items, seed=2))
        kernel.spawn(get_workload("alpha").build(items=192, seed=2))
        kernel.run()
        assert kernel.cis.stats.evictions > 0


class TestPaperShapes:
    """The qualitative findings of §5.1, asserted at tiny scale."""

    def run_series(self, workload, instances, quantum_ms, soft=False,
                   policy="round_robin"):
        return [
            run_experiment(
                ExperimentSpec(
                    workload=workload,
                    instances=n,
                    quantum_ms=quantum_ms,
                    policy=policy,
                    soft=soft,
                    scale=SCALE,
                ),
                verify=False,
            ).makespan
            for n in instances
        ]

    def test_linear_until_knee_alpha(self):
        ys = self.run_series("alpha", range(1, 6), 10.0)
        base = ys[0]
        for n in range(1, 4):  # 2..4 instances: linear
            assert ys[n] / (base * (n + 1)) < 1.12
        assert ys[4] / (base * 5) > ys[3] / (base * 4)

    def test_echo_knee_at_two(self):
        ys = self.run_series("echo", range(1, 5), 1.0)
        base = ys[0]
        assert ys[1] / (2 * base) < 1.15  # two instances fit
        assert ys[2] / (3 * base) > 1.3   # three do not

    def test_small_quantum_hurts_more_under_contention(self):
        slow = self.run_series("alpha", [6], 1.0)[0]
        fast = self.run_series("alpha", [6], 10.0)[0]
        assert slow > fast * 1.1

    def test_soft_dispatch_quantum_insensitive(self):
        at_10ms = self.run_series("alpha", [6], 10.0, soft=True)[0]
        at_1ms = self.run_series("alpha", [6], 1.0, soft=True)[0]
        assert abs(at_10ms - at_1ms) / at_10ms < 0.15

    def test_soft_dispatch_beats_switching_for_echo_at_1ms(self):
        """§5.1.2: for the thrash-prone two-circuit workload at small
        quanta, deferring to software wins.  Run at a finer scale than
        the other shape tests: with only a dozen cycles per quantum the
        comparison degenerates."""
        def makespan(soft):
            return run_experiment(
                ExperimentSpec(
                    workload="echo", instances=4, quantum_ms=1.0,
                    soft=soft, scale=1 / 2000,
                ),
                verify=False,
            ).makespan

        assert makespan(True) < makespan(False)
