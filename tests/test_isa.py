"""ISA-level semantics: flags and conditions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import Cond, Flags, code_address, code_index, to_signed

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestFlagsFromSub:
    @given(a=WORDS, b=WORDS)
    @settings(max_examples=200)
    def test_matches_signed_and_unsigned_arithmetic(self, a, b):
        flags = Flags()
        flags.set_from_sub(a, b)
        result = (a - b) & 0xFFFFFFFF
        assert flags.z == (a == b)
        assert flags.n == bool(result >> 31)
        assert flags.c == (a >= b)
        signed = to_signed(a) - to_signed(b)
        assert flags.v == not_in_range(signed)

    def test_equality(self):
        flags = Flags()
        flags.set_from_sub(5, 5)
        assert flags.z and flags.c and not flags.n and not flags.v

    def test_signed_overflow(self):
        flags = Flags()
        flags.set_from_sub(0x80000000, 1)  # INT_MIN - 1 overflows
        assert flags.v


def not_in_range(value: int) -> bool:
    return not (-(1 << 31) <= value < (1 << 31))


class TestFlagsFromAdd:
    @given(a=WORDS, b=WORDS)
    @settings(max_examples=200)
    def test_matches_arithmetic(self, a, b):
        flags = Flags()
        flags.set_from_add(a, b)
        result = (a + b) & 0xFFFFFFFF
        assert flags.z == (result == 0)
        assert flags.n == bool(result >> 31)
        assert flags.c == (a + b > 0xFFFFFFFF)
        assert flags.v == not_in_range(to_signed(a) + to_signed(b))


class TestConditions:
    @given(a=WORDS, b=WORDS)
    @settings(max_examples=200)
    def test_signed_comparisons(self, a, b):
        flags = Flags()
        flags.set_from_sub(a, b)
        sa, sb = to_signed(a), to_signed(b)
        assert flags.passes(Cond.EQ) == (sa == sb)
        assert flags.passes(Cond.NE) == (sa != sb)
        assert flags.passes(Cond.LT) == (sa < sb)
        assert flags.passes(Cond.LE) == (sa <= sb)
        assert flags.passes(Cond.GT) == (sa > sb)
        assert flags.passes(Cond.GE) == (sa >= sb)

    @given(a=WORDS, b=WORDS)
    @settings(max_examples=200)
    def test_unsigned_comparisons(self, a, b):
        flags = Flags()
        flags.set_from_sub(a, b)
        assert flags.passes(Cond.CC) == (a < b)
        assert flags.passes(Cond.CS) == (a >= b)
        assert flags.passes(Cond.HI) == (a > b)
        assert flags.passes(Cond.LS) == (a <= b)

    def test_al_always_passes(self):
        assert Flags().passes(Cond.AL)

    def test_mi_pl(self):
        flags = Flags()
        flags.set_from_sub(0, 1)
        assert flags.passes(Cond.MI)
        flags.set_from_sub(1, 0)
        assert flags.passes(Cond.PL)


class TestLogicalFlags:
    def test_tst_sets_nz_only(self):
        flags = Flags(c=True, v=True)
        flags.set_from_logical(0)
        assert flags.z and not flags.n
        assert flags.c and flags.v  # unaffected

    def test_negative_result(self):
        flags = Flags()
        flags.set_from_logical(0x80000000)
        assert flags.n and not flags.z


class TestCodeAddressing:
    def test_roundtrip(self):
        for index in (0, 1, 1000):
            assert code_index(code_address(index)) == index

    def test_non_code_address_rejected(self):
        with pytest.raises(ValueError):
            code_index(0x1000)

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            code_index(code_address(1) + 2)


class TestToSigned:
    @given(value=WORDS)
    @settings(max_examples=100)
    def test_range(self, value):
        signed = to_signed(value)
        assert -(1 << 31) <= signed < (1 << 31)
        assert signed & 0xFFFFFFFF == value
