"""The job scheduler core: queueing, slicing, migration, timeouts."""

import threading
import time

import pytest

from repro.errors import ExperimentError
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.jobs import (
    MIN_PRIORITY,
    Job,
    JobQueue,
    JobState,
    QueueFull,
    Scheduler,
)
from repro.sim.runner import ResultCache, SweepRunner

SCALE = 1 / 8000


def spec(**overrides) -> ExperimentSpec:
    values = dict(workload="alpha", instances=1, quantum_ms=1.0, scale=SCALE)
    values.update(overrides)
    return ExperimentSpec(**values)


def make_job(job_id=1, *, priority=0, **kwargs) -> Job:
    return Job(job_id, spec(), priority=priority, **kwargs)


class TestJobQueue:
    def test_priority_descending_fifo_within_band(self):
        queue = JobQueue()
        low = make_job(1, priority=0)
        first_high = make_job(2, priority=5)
        second_high = make_job(3, priority=5)
        queue.put(low)
        queue.put(first_high)
        queue.put(second_high)
        assert queue.get() is first_high  # priority wins
        assert queue.get() is second_high  # FIFO inside the band
        assert queue.get() is low

    def test_bounded_queue_rejects_when_full(self):
        queue = JobQueue(maxsize=1)
        queue.put(make_job(1))
        with pytest.raises(QueueFull):
            queue.put(make_job(2), block=False)
        with pytest.raises(QueueFull):
            queue.put(make_job(3), timeout=0.05)

    def test_backpressure_blocks_until_space(self):
        queue = JobQueue(maxsize=1)
        queue.put(make_job(1))
        admitted = threading.Event()

        def submitter():
            queue.put(make_job(2))
            admitted.set()

        thread = threading.Thread(target=submitter, daemon=True)
        thread.start()
        assert not admitted.wait(0.1)  # full queue holds the submitter
        queue.get()
        assert admitted.wait(5.0)  # space frees it
        thread.join()

    def test_close_wakes_getters(self):
        queue = JobQueue()
        got = []

        def getter():
            got.append(queue.get())

        thread = threading.Thread(target=getter, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5.0)
        assert got == [None]


class TestInlineScheduler:
    def test_inline_matches_run_experiment(self):
        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        with Scheduler(workers=0) as scheduler:
            job = scheduler.submit(point)
            assert job.done()  # inline execution completes at submit
            assert job.result() == reference

    def test_cache_hit_completes_immediately(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = spec()
        with Scheduler(workers=0, cache=cache) as first:
            reference = first.submit(point).result()
        with Scheduler(workers=0, cache=cache) as second:
            job = second.submit(point)
            assert job.cached
            assert job.result() == reference
            assert second.stats.cache_hits == 1
            assert second.stats.executed == 0

    def test_sliced_inline_bit_identical(self):
        """Quantum-sliced execution (checkpoint every slice) lands on
        exactly the uninterrupted outcome."""
        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        with Scheduler(workers=0, slice_quanta=300) as scheduler:
            job = scheduler.submit(point)
            assert job.result() == reference
            assert job.preemptions > 0  # it really was sliced

    def test_failed_job_raises_from_result(self, monkeypatch):
        import repro.sim.jobs as jobs_module

        def boom(payload):
            raise ExperimentError("kaboom")

        monkeypatch.setattr(jobs_module, "_execute_slice", boom)
        with Scheduler(workers=0) as scheduler:
            job = scheduler.submit(spec())
            assert job.state is JobState.FAILED
            with pytest.raises(ExperimentError, match="kaboom"):
                job.result()


class TestPooledScheduler:
    def test_pooled_sliced_bit_identical(self):
        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        with Scheduler(workers=2, slice_quanta=512) as scheduler:
            job = scheduler.submit(point)
            assert job.result(timeout=120) == reference
            assert job.preemptions > 0
            assert len(job.worker_pids) == job.preemptions + 1

    def test_rotate_workers_migrates_between_pids(self):
        """Preempt on worker A, resume on worker B: with pool rotation
        every slice lands on a fresh process, and the outcome is still
        bit-identical to the uninterrupted run."""
        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        with Scheduler(
            workers=1, slice_quanta=1024, rotate_workers=True
        ) as scheduler:
            job = scheduler.submit(point)
            outcome = job.result(timeout=120)
        assert outcome == reference
        assert job.preemptions >= 1
        assert len(set(job.worker_pids)) >= 2  # it really moved

    def test_coalescing_shares_one_execution(self):
        point = spec(instances=2)
        with Scheduler(workers=1, slice_quanta=512) as scheduler:
            first = scheduler.submit(point)
            second = scheduler.submit(point)  # identical, still in flight
            a = first.result(timeout=120)
            b = second.result(timeout=120)
        assert second.coalesced
        assert a == b
        assert scheduler.stats.coalesced == 1
        assert scheduler.stats.executed == 1

    def test_migration_into_scheduler_via_checkpoint(self):
        """An explicit checkpoint submission resumes exactly where an
        external machine stopped (migration across schedulers)."""
        from repro.machine import Machine

        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        machine = Machine.from_spec(point)
        machine.spawn_instances()
        machine.run_quanta(16)
        assert not machine.finished
        checkpoint = machine.checkpoint()
        with Scheduler(workers=1) as scheduler:
            job = scheduler.submit(point, checkpoint=checkpoint)
            assert job.result(timeout=120) == reference


class TestTimeouts:
    def test_timeout_fails_job(self):
        point = spec(instances=2)
        with Scheduler(workers=0, slice_quanta=256) as scheduler:
            job = scheduler.submit(point, timeout_s=0.0)
            assert job.state is JobState.FAILED
            assert job.timed_out
            assert job.checkpoint is not None  # checkpointed on the way out
            assert scheduler.stats.timeouts == 1
            with pytest.raises(ExperimentError, match="timed out"):
                job.result()

    def test_timeout_demotes_and_finishes(self):
        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        with Scheduler(workers=0, slice_quanta=256) as scheduler:
            job = scheduler.submit(
                point, priority=3, timeout_s=0.0, timeout_action="demote"
            )
            assert job.result() == reference
            assert job.timed_out
            assert job.priority < 3  # requeued below its old band
            assert scheduler.stats.timeouts == 1

    def test_timeout_surfaces_in_sweep_stats(self):
        runner = SweepRunner(timeout_s=0.0, timeout_action="demote")
        outcomes = runner.run([spec(instances=2)])
        assert len(outcomes) == 1
        assert runner.stats.timeouts == 1

    def test_invalid_timeout_action_rejected(self):
        with pytest.raises(ExperimentError):
            Job(1, spec(), timeout_action="explode")

    def test_demote_clamps_at_priority_floor(self):
        """One band above the floor, a demotion lands exactly on
        MIN_PRIORITY — never below it — and the job still finishes."""
        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        with Scheduler(workers=0, slice_quanta=256) as scheduler:
            job = scheduler.submit(
                point, priority=MIN_PRIORITY + 1, timeout_s=0.0,
                timeout_action="demote",
            )
            assert job.result() == reference
            assert job.timed_out
            assert job.priority == MIN_PRIORITY

    def test_demote_at_floor_fails_cleanly(self):
        """A timed-out job already at the lowest band has nowhere to
        sink: ``demote`` must fail the job (saying why) instead of
        looping priority underflow / ``demoted`` events forever."""
        with Scheduler(workers=0, slice_quanta=256) as scheduler:
            job = scheduler.submit(
                spec(instances=2), priority=MIN_PRIORITY, timeout_s=0.0,
                timeout_action="demote",
            )
            assert job.state is JobState.FAILED
            assert job.timed_out
            assert job.priority == MIN_PRIORITY  # no underflow
            assert scheduler.stats.timeouts == 1
            with pytest.raises(ExperimentError, match="lowest priority"):
                job.result()


class TestPriorities:
    def test_higher_priority_dispatches_first(self):
        """With one worker and a busy slot, queued jobs drain in
        priority order regardless of submission order."""
        order = []
        lock = threading.Lock()

        def track(label):
            def callback(job):
                with lock:
                    order.append(label)
            return callback

        with Scheduler(workers=1, slice_quanta=256) as scheduler:
            # Distinct seeds: distinct jobs, no coalescing.
            filler = scheduler.submit(spec(seed=100, instances=2))
            low = scheduler.submit(spec(seed=101), priority=0)
            high = scheduler.submit(spec(seed=102), priority=9)
            low.add_done_callback(track("low"))
            high.add_done_callback(track("high"))
            filler.result(timeout=120)
            low.result(timeout=120)
            high.result(timeout=120)
        assert order.index("high") < order.index("low")
