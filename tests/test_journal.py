"""The crash-safe job journal: framing, replay, recovery, degradation.

The properties under test are the load-bearing ones from the crash
safety design: replay never crashes and always recovers the longest
valid record prefix no matter how the tail was torn or flipped;
recovery folds records idempotently (no job lost, none doubled); and a
journal that cannot write degrades to in-memory instead of failing
submissions.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.journal import (
    JOURNAL_NAME,
    Journal,
    RecoveredJob,
    recovered_jobs,
    _encode,
)


def record(i, kind="submitted", **extra):
    base = {"type": kind, "job": i}
    if kind == "submitted":
        base.update(
            {"spec": {"workload": "alpha", "instances": i},
             "tenant": "t", "verify": False, "priority": 0,
             "timeout_s": None, "timeout_action": "fail"}
        )
    base.update(extra)
    return base


class TestFraming:
    def test_round_trip(self, tmp_path):
        journal = Journal(tmp_path)
        for i in range(5):
            journal.append(record(i))
        journal.close()
        assert journal.replay() == [record(i) for i in range(5)]

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert Journal(tmp_path / "nowhere").replay() == []

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append(record(0))
        journal.append(record(1))
        journal.close()
        path = tmp_path / JOURNAL_NAME
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # tear the newline off record 1
        assert journal.replay() == [record(0)]

    def test_truncate_trims_to_valid_prefix(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append(record(0))
        journal.close()
        path = tmp_path / JOURNAL_NAME
        good = path.read_bytes()
        path.write_bytes(good + b"garbage without a frame\n")
        assert journal.replay(truncate=True) == [record(0)]
        assert path.read_bytes() == good

    def test_non_object_payload_is_invalid(self, tmp_path):
        journal = Journal(tmp_path)
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(_encode([1, 2, 3]) + _encode(record(0)))
        # A valid frame around a non-dict payload still ends the prefix.
        assert journal.replay() == []


class TestReplayRobustness:
    """Replay must survive arbitrary tail damage, recovering the
    longest valid prefix — the core crash-safety property."""

    @settings(max_examples=60, deadline=None)
    @given(
        n_records=st.integers(0, 8),
        cut=st.integers(0, 400),
        data=st.data(),
    )
    def test_truncated_tail_recovers_longest_valid_prefix(
        self, tmp_path_factory, n_records, cut, data
    ):
        tmp_path = tmp_path_factory.mktemp("journal")
        journal = Journal(tmp_path)
        records = [record(i) for i in range(n_records)]
        for rec in records:
            journal.append(rec)
        journal.close()
        path = tmp_path / JOURNAL_NAME
        blob = path.read_bytes() if n_records else b""
        path.write_bytes(blob[: max(0, len(blob) - cut)])
        # Which whole records survived the cut?
        lines = []
        offset = 0
        for rec in records:
            offset += len(_encode(rec))
            lines.append(offset)
        expected = sum(
            1 for end in lines if end <= len(blob) - cut
        )
        replayed = journal.replay()
        assert replayed == records[:expected]

    @settings(max_examples=60, deadline=None)
    @given(
        n_records=st.integers(1, 6),
        flip_at=st.integers(0, 10_000),
        flip_bit=st.integers(0, 7),
    )
    def test_bit_flip_never_crashes_and_keeps_a_prefix(
        self, tmp_path_factory, n_records, flip_at, flip_bit
    ):
        tmp_path = tmp_path_factory.mktemp("journal")
        journal = Journal(tmp_path)
        records = [record(i) for i in range(n_records)]
        for rec in records:
            journal.append(rec)
        journal.close()
        path = tmp_path / JOURNAL_NAME
        blob = bytearray(path.read_bytes())
        index = flip_at % len(blob)
        blob[index] ^= 1 << flip_bit
        path.write_bytes(bytes(blob))
        replayed = journal.replay()
        # Never crashes; result is some prefix of the written records.
        assert replayed == records[: len(replayed)]
        # Records wholly before the flipped byte always survive.
        offset = 0
        intact = 0
        for rec in records:
            offset += len(_encode(rec))
            if offset <= index:
                intact += 1
        assert len(replayed) >= intact


class TestRecovery:
    def test_terminal_jobs_are_not_recovered(self):
        records = [
            record(1),
            record(2, instances=99),
            record(1, kind="state", state="done"),
        ]
        # Distinct specs so dedupe cannot conflate them.
        records[1]["spec"] = {"workload": "alpha", "instances": 99}
        pending = recovered_jobs(records)
        assert len(pending) == 1
        assert pending[0].spec_dict["instances"] == 99

    def test_dedupe_never_doubles_a_point(self):
        # The same (tenant, spec, verify) journaled three times — e.g.
        # a client resubmitting across two daemon crashes — recovers
        # exactly once, with the freshest checkpoint ref.
        same = record(1)["spec"]
        records = []
        for job_id in (1, 2, 3):
            rec = record(job_id)
            rec["spec"] = same
            records.append(rec)
        records.append(
            {"type": "checkpoint", "job": 2, "ref": "ckpt/job-2.json"}
        )
        records.append(
            {"type": "checkpoint", "job": 3, "ref": "ckpt/job-3.json"}
        )
        pending = recovered_jobs(records)
        assert len(pending) == 1
        assert pending[0].checkpoint_ref == "ckpt/job-3.json"

    def test_replaying_twice_is_idempotent(self):
        records = [record(1), record(2)]
        records[1]["spec"] = {"workload": "alpha", "instances": 7}
        once = recovered_jobs(records)
        twice = recovered_jobs(records + records)
        assert len(once) == len(twice) == 2

    def test_different_verify_or_tenant_is_a_different_job(self):
        a = record(1)
        b = record(2)
        b["verify"] = True
        c = record(3)
        c["tenant"] = "other"
        assert len(recovered_jobs([a, b, c])) == 3

    def test_malformed_records_are_skipped(self):
        records = [
            {"type": "submitted"},  # no job id, no spec
            {"type": "submitted", "job": 1, "spec": "not a dict"},
            {"type": "state", "job": 99, "state": "done"},
            {"type": "???", "job": 1},
            record(5),
        ]
        pending = recovered_jobs(records)
        assert len(pending) == 1
        assert isinstance(pending[0], RecoveredJob)


class TestCheckpointSideFiles:
    def test_store_and_load(self, tmp_path):
        journal = Journal(tmp_path)
        ref = journal.store_checkpoint("job-7", {"clock": 123})
        assert ref == "ckpt/job-7.json"
        assert journal.load_checkpoint(ref) == {"clock": 123}

    def test_latest_only(self, tmp_path):
        journal = Journal(tmp_path)
        journal.store_checkpoint("job-7", {"clock": 1})
        ref = journal.store_checkpoint("job-7", {"clock": 2})
        assert journal.load_checkpoint(ref) == {"clock": 2}

    def test_missing_or_hostile_ref_is_none(self, tmp_path):
        journal = Journal(tmp_path)
        assert journal.load_checkpoint("ckpt/never.json") is None
        assert journal.load_checkpoint("../../etc/passwd") is None
        assert journal.load_checkpoint(42) is None

    def test_corrupt_checkpoint_is_none(self, tmp_path):
        journal = Journal(tmp_path)
        ref = journal.store_checkpoint("job-7", {"clock": 1})
        (tmp_path / ref).write_text("{broken json")
        assert journal.load_checkpoint(ref) is None


class TestDegradedMode:
    def test_unwritable_journal_degrades_not_raises(self, tmp_path, capsys):
        # A regular file where the directory should be: every mkdir and
        # open fails with an OSError, on any platform, even as root
        # (chmod-based read-only is a no-op for uid 0).
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        journal = Journal(blocker / "journal")
        journal.append(record(0))
        journal.append(record(1))
        assert journal.degraded
        assert journal.appended == 2
        assert journal.store_checkpoint("job-1", {"clock": 1}) is None
        # Exactly one warning, not one per record.
        err = capsys.readouterr().err
        assert err.count("continuing without crash safety") == 1

    def test_scheduler_submits_fine_on_degraded_journal(self, tmp_path):
        from repro.sim.jobs import Scheduler

        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        journal = Journal(blocker / "journal")
        scheduler = Scheduler(workers=0, journal=journal)
        try:
            from repro.sim.experiment import ExperimentSpec

            job = scheduler.submit(
                ExperimentSpec(workload="alpha", instances=1,
                               scale=1 / 8000.0)
            )
            assert job.result() is not None
        finally:
            scheduler.shutdown()
        assert journal.degraded


class TestReset:
    def test_reset_archives_and_restarts(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append(record(0))
        journal.reset()
        assert journal.replay() == []
        assert (tmp_path / "journal.log.old").exists()
        journal.append(record(1))
        assert journal.replay() == [record(1)]


class TestSchedulerJournalIntegration:
    def test_submit_and_complete_round_trip(self, tmp_path):
        from repro.sim.experiment import ExperimentSpec
        from repro.sim.jobs import Scheduler

        journal = Journal(tmp_path)
        scheduler = Scheduler(workers=0, journal=journal)
        try:
            scheduler.submit(
                ExperimentSpec(workload="alpha", instances=1,
                               scale=1 / 8000.0)
            ).result()
        finally:
            scheduler.shutdown()
        journal.close()
        kinds = [rec["type"] for rec in journal.replay()]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "state"
        # Everything terminal: nothing to recover.
        assert recovered_jobs(journal.replay()) == []

    def test_interrupted_job_is_recovered_once(self, tmp_path):
        from repro.machine import spec_to_dict
        from repro.sim.experiment import ExperimentSpec
        from repro.sim.jobs import Scheduler

        spec = ExperimentSpec(workload="alpha", instances=1,
                              scale=1 / 8000.0)
        # Simulate a daemon killed mid-job: it journaled the submission
        # (twice — the client resubmitted after a reconnect) and a
        # lifecycle transition, but never a terminal state.
        journal = Journal(tmp_path)
        for job_id in (1, 2):
            journal.append({
                "type": "submitted", "job": job_id, "tenant": "default",
                "spec": spec_to_dict(spec), "verify": False,
                "priority": 0, "timeout_s": None,
                "timeout_action": "fail",
            })
        journal.append({"type": "state", "job": 1, "state": "running"})
        journal.close()

        journal2 = Journal(tmp_path)
        scheduler2 = Scheduler(workers=0, journal=journal2)
        try:
            # Deduped to one job despite two submitted records; the
            # workers=0 scheduler runs it inline to completion.
            assert scheduler2.recover() == 1
            assert scheduler2.stats.jobs_recovered == 1
            assert scheduler2.stats.journal_replays == 1
            # Idempotent: a second recover finds a reset journal.
            assert scheduler2.recover() == 0
        finally:
            scheduler2.shutdown()
