"""The Machine facade: lifecycle, checkpoints, and resume fidelity.

The headline invariant under test: checkpoint at a quantum boundary,
serialise to JSON, restore (even in a fresh interpreter), run to
completion — and every measurable outcome is bit-identical to the
uninterrupted run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import CheckpointError, Machine
from repro.config import MachineConfig
from repro.machine import CHECKPOINT_FORMAT, CHECKPOINT_VERSION
from repro.sim.experiment import ExperimentSpec, run_experiment

SCALE = 1 / 8000


def spec(**overrides) -> ExperimentSpec:
    values = dict(workload="alpha", instances=2, quantum_ms=1.0, scale=SCALE)
    values.update(overrides)
    return ExperimentSpec(**values)


def outcome_fields(outcome) -> tuple:
    """Everything a checkpointed run must reproduce bit-identically."""
    return (
        outcome.makespan,
        outcome.completions,
        outcome.kernel_stats,
        outcome.cis,
        outcome.process_cycles,
    )


class TestLifecycle:
    def test_from_spec_runs_like_run_experiment(self):
        reference = run_experiment(spec())
        machine = Machine.from_spec(spec())
        machine.spawn_instances()
        machine.run()
        assert machine.finished
        assert outcome_fields(machine.outcome()) == outcome_fields(reference)

    def test_spawn_instances_assigns_sequential_pids(self):
        machine = Machine.from_spec(spec(instances=3))
        processes = machine.spawn_instances()
        assert [p.pid for p in processes] == [1, 2, 3]

    def test_run_quanta_counts_executed_quanta(self):
        machine = Machine.from_spec(spec())
        machine.spawn_instances()
        assert machine.run_quanta(5) == 5
        assert machine.stats.quanta == 5
        assert not machine.finished

    def test_run_quanta_stops_at_completion(self):
        machine = Machine.from_spec(spec())
        machine.spawn_instances()
        executed = machine.run_quanta(10**9)
        assert machine.finished
        assert executed == machine.stats.quanta

    def test_architecture_selects_kernel(self):
        from repro.baselines.prisc import PriscPorsche

        assert isinstance(
            Machine.from_spec(spec(architecture="prisc")).kernel, PriscPorsche
        )
        assert not isinstance(
            Machine.from_spec(spec()).kernel, PriscPorsche
        )


@pytest.mark.parametrize("architecture", ["proteus", "prisc", "memmap"])
class TestCheckpointRoundTrip:
    def test_resume_is_bit_identical(self, architecture):
        point = spec(architecture=architecture)
        reference = run_experiment(point)

        machine = Machine.from_spec(point)
        machine.spawn_instances()
        machine.run_quanta(7)
        # Full JSON round-trip: what survives serialisation is what a
        # fresh interpreter would see.
        checkpoint = json.loads(json.dumps(machine.checkpoint()))
        resumed = Machine.resume(checkpoint)
        resumed.run()
        assert outcome_fields(resumed.outcome()) == outcome_fields(reference)

    def test_checkpoint_document_shape(self, architecture):
        machine = Machine.from_spec(spec(architecture=architecture))
        machine.spawn_instances()
        machine.run_quanta(3)
        checkpoint = machine.checkpoint()
        assert checkpoint["format"] == CHECKPOINT_FORMAT
        assert checkpoint["version"] == CHECKPOINT_VERSION
        assert checkpoint["clock"] == machine.clock
        assert checkpoint["quanta"] == 3
        # Round-trips losslessly through JSON text.
        assert json.loads(json.dumps(checkpoint)) == checkpoint

    def test_resumed_machine_continues_from_the_boundary(self, architecture):
        machine = Machine.from_spec(spec(architecture=architecture))
        machine.spawn_instances()
        machine.run_quanta(5)
        resumed = Machine.resume(machine.checkpoint())
        assert resumed.clock == machine.clock
        assert resumed.stats == machine.stats
        assert sorted(resumed.processes) == sorted(machine.processes)


class TestFreshInterpreter:
    def test_resume_in_a_new_process(self, tmp_path):
        """Save to disk, finish the run in a brand-new interpreter."""
        point = spec()
        reference = run_experiment(point)

        machine = Machine.from_spec(point)
        machine.spawn_instances()
        machine.run_quanta(9)
        path = tmp_path / "machine.json"
        machine.save_checkpoint(path)

        script = (
            "import json, sys\n"
            "from repro import Machine\n"
            "machine = Machine.load_checkpoint(sys.argv[1])\n"
            "machine.run()\n"
            "outcome = machine.outcome()\n"
            "print(json.dumps({'makespan': outcome.makespan,"
            " 'completions': outcome.completions,"
            " 'quanta': outcome.kernel_stats.quanta,"
            " 'process_cycles': outcome.process_cycles}))\n"
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True, text=True, env=env, check=True,
        )
        report = json.loads(result.stdout)
        assert report["makespan"] == reference.makespan
        assert report["completions"] == reference.completions
        assert report["quanta"] == reference.kernel_stats.quanta
        assert report["process_cycles"] == [
            list(pair) for pair in reference.process_cycles
        ]


class TestRunCapturing:
    def test_captures_a_late_checkpoint(self):
        machine = Machine.from_spec(spec())
        machine.spawn_instances()
        captured = machine.run_capturing(base_quanta=4)
        assert machine.finished
        assert captured is not None
        # Doubling marks keep only the latest snapshot, which must lie
        # in the second half of the run for warm starts to pay off.
        assert captured["quanta"] * 2 > machine.stats.quanta // 2

        reference = run_experiment(spec())
        resumed = Machine.resume(json.loads(json.dumps(captured)))
        resumed.run()
        assert outcome_fields(resumed.outcome()) == outcome_fields(reference)

    def test_short_runs_capture_nothing(self):
        machine = Machine.from_spec(spec())
        machine.spawn_instances()
        assert machine.run_capturing(base_quanta=10**9) is None
        assert machine.finished


class TestRefusals:
    def test_config_machines_cannot_checkpoint(self):
        machine = Machine.from_config(MachineConfig())
        with pytest.raises(CheckpointError):
            machine.checkpoint()

    def test_checkpoint_before_spawn_refused(self):
        machine = Machine.from_spec(spec())
        with pytest.raises(CheckpointError):
            machine.checkpoint()

    def test_resume_rejects_foreign_documents(self):
        with pytest.raises(CheckpointError):
            Machine.resume({"format": "something-else"})

    def test_resume_rejects_future_versions(self):
        machine = Machine.from_spec(spec())
        machine.spawn_instances()
        machine.run_quanta(1)
        checkpoint = machine.checkpoint()
        checkpoint["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError):
            Machine.resume(checkpoint)
