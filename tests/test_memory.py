"""Process memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.memory import Memory
from repro.errors import MemoryFault


def mem() -> Memory:
    return Memory(size=4096, guard_below=0x100)


class TestWordAccess:
    def test_store_load(self):
        m = mem()
        m.store_word(0x200, 0xDEADBEEF)
        assert m.load_word(0x200) == 0xDEADBEEF

    def test_little_endian(self):
        m = mem()
        m.store_word(0x200, 0x11223344)
        assert m.load_byte(0x200) == 0x44
        assert m.load_byte(0x203) == 0x11

    def test_values_masked(self):
        m = mem()
        m.store_word(0x200, -1)
        assert m.load_word(0x200) == 0xFFFFFFFF

    def test_unaligned_rejected(self):
        m = mem()
        with pytest.raises(MemoryFault, match="unaligned"):
            m.load_word(0x201)
        with pytest.raises(MemoryFault, match="unaligned"):
            m.store_word(0x202, 0)


class TestByteAccess:
    def test_store_load(self):
        m = mem()
        m.store_byte(0x305, 0xAB)
        assert m.load_byte(0x305) == 0xAB

    def test_byte_masked(self):
        m = mem()
        m.store_byte(0x305, 0x1FF)
        assert m.load_byte(0x305) == 0xFF


class TestProtection:
    def test_guard_page(self):
        m = mem()
        with pytest.raises(MemoryFault, match="guard"):
            m.load_word(0)
        with pytest.raises(MemoryFault, match="guard"):
            m.store_byte(0xFF, 1)

    def test_out_of_bounds(self):
        m = mem()
        with pytest.raises(MemoryFault):
            m.load_word(4096)
        with pytest.raises(MemoryFault):
            m.store_word(4094, 0)  # word straddles the end

    def test_code_space_not_mapped(self):
        from repro.cpu.isa import CODE_BASE

        with pytest.raises(MemoryFault):
            mem().load_word(CODE_BASE)

    def test_size_must_exceed_guard(self):
        with pytest.raises(MemoryFault):
            Memory(size=0x100, guard_below=0x100)


class TestBulk:
    def test_write_read_block(self):
        m = mem()
        m.write_block(0x200, b"hello")
        assert m.read_block(0x200, 5) == b"hello"

    def test_read_words(self):
        m = mem()
        m.store_word(0x200, 1)
        m.store_word(0x204, 2)
        assert m.read_words(0x200, 2) == [1, 2]

    def test_read_words_matches_sequential_loads(self):
        m = mem()
        for i in range(16):
            m.store_word(0x200 + 4 * i, (i * 0x01010101) & 0xFFFFFFFF)
        assert m.read_words(0x200, 16) == [
            m.load_word(0x200 + 4 * i) for i in range(16)
        ]

    def test_read_words_non_positive_count(self):
        assert mem().read_words(0x200, 0) == []
        assert mem().read_words(0x200, -3) == []

    @given(
        address=st.integers(min_value=0, max_value=4200),
        count=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=150)
    def test_read_words_fault_parity_with_load_loop(self, address, count):
        """The bulk path raises exactly the fault (address and message)
        that ``count`` sequential ``load_word`` calls would raise —
        or returns exactly their values when none faults."""
        m = mem()
        try:
            expected = [m.load_word(address + 4 * i) for i in range(count)]
        except MemoryFault as fault:
            with pytest.raises(MemoryFault) as caught:
                m.read_words(address, count)
            assert caught.value.address == fault.address
            assert str(caught.value) == str(fault)
        else:
            assert m.read_words(address, count) == expected

    def test_stack_top_word_aligned(self):
        assert Memory(size=4094).stack_top % 4 == 0

    @given(
        address=st.integers(min_value=0x100, max_value=4092).map(lambda a: a & ~3),
        value=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    @settings(max_examples=100)
    def test_store_load_roundtrip(self, address, value):
        m = mem()
        m.store_word(address, value)
        assert m.load_word(address) == value
