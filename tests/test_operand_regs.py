"""Software-dispatch operand registers (§4.3)."""

import pytest

from repro.core.operand_regs import OperandRegisters
from repro.errors import DispatchError


class TestOperandRegisters:
    def test_capture_and_read(self):
        regs = OperandRegisters()
        regs.capture(11, 22, 3)
        assert regs.read_operand(0) == 11
        assert regs.read_operand(1) == 22

    def test_values_masked_to_32_bits(self):
        regs = OperandRegisters()
        regs.capture(1 << 40, -1, 0)
        assert regs.read_operand(0) == 0
        assert regs.read_operand(1) == 0xFFFFFFFF

    def test_take_result_dest_ends_dispatch(self):
        regs = OperandRegisters()
        regs.capture(1, 2, 7)
        assert regs.take_result_dest() == 7
        assert not regs.valid

    def test_read_without_capture_rejected(self):
        with pytest.raises(DispatchError):
            OperandRegisters().read_operand(0)

    def test_sto_without_capture_rejected(self):
        with pytest.raises(DispatchError):
            OperandRegisters().take_result_dest()

    def test_bad_selector_rejected(self):
        regs = OperandRegisters()
        regs.capture(1, 2, 0)
        with pytest.raises(DispatchError):
            regs.read_operand(2)

    def test_nested_dispatch_detected(self):
        """§4.3: a software alternative using another software-dispatched
        custom instruction clobbers the registers — flagged, not fatal."""
        regs = OperandRegisters()
        regs.capture(1, 2, 0)
        regs.capture(3, 4, 1)
        assert regs.clobbers == 1
        assert regs.read_operand(0) == 3

    def test_save_restore_across_process_switch(self):
        regs = OperandRegisters()
        regs.capture(5, 6, 2)
        saved = regs.save()
        regs.capture(9, 9, 9)
        regs.take_result_dest()
        regs.restore(saved)
        assert regs.valid
        assert regs.read_operand(0) == 5
        assert regs.take_result_dest() == 2
