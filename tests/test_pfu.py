"""PFUs: the init/done handshake and status register of §4.4, and the
usage counters of §4.5."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import adder_spec, counter_spec
from repro.config import MachineConfig
from repro.core.pfu import PFU, PFUBank
from repro.errors import PFUError

CONFIG = MachineConfig()


def loaded_pfu(spec=None) -> PFU:
    pfu = PFU(index=0, clb_capacity=500)
    pfu.load((spec or adder_spec(latency=4)).instantiate(1, CONFIG))
    return pfu


class TestLoading:
    def test_status_resets_high_on_fresh_load(self):
        assert loaded_pfu().status == 1

    def test_oversized_circuit_rejected(self):
        pfu = PFU(index=0, clb_capacity=50)
        with pytest.raises(PFUError):
            pfu.load(adder_spec(clbs=100).instantiate(1, CONFIG))

    def test_unload_returns_instance(self):
        pfu = loaded_pfu()
        instance = pfu.unload()
        assert instance.spec.name == "adder"
        assert not pfu.configured

    def test_unload_empty_rejected(self):
        with pytest.raises(PFUError):
            PFU(index=0, clb_capacity=500).unload()

    def test_load_in_flight_instance_sets_status_low(self):
        """A circuit evicted mid-instruction resumes with init low."""
        source = loaded_pfu()
        source.issue(1, 2)
        source.clock(2)  # 2 of 4 cycles
        instance = source.unload()
        dest = PFU(index=1, clb_capacity=500)
        dest.load(instance)
        assert dest.status == 0


class TestExecution:
    def test_complete_in_one_burst(self):
        pfu = loaded_pfu()
        pfu.issue(10, 20)
        cycles, result = pfu.clock(10)
        assert (cycles, result) == (4, 30)
        assert pfu.status == 1

    def test_interrupt_and_transparent_reissue(self):
        """§4.4: re-issuing with status low continues, ignoring operands."""
        pfu = loaded_pfu()
        pfu.issue(10, 20)
        cycles, result = pfu.clock(1)
        assert (cycles, result) == (1, None)
        assert pfu.status == 0
        # Re-issue with *different* operands: they must be ignored.
        pfu.issue(999, 999)
        cycles, result = pfu.clock(10)
        assert (cycles, result) == (3, 30)

    def test_issue_without_circuit_rejected(self):
        with pytest.raises(PFUError):
            PFU(index=0, clb_capacity=500).issue(1, 2)

    def test_clock_while_idle_rejected(self):
        with pytest.raises(PFUError):
            loaded_pfu().clock(1)

    def test_busy_cycle_accounting(self):
        pfu = loaded_pfu()
        pfu.issue(1, 2)
        pfu.clock(3)
        pfu.issue(0, 0)
        pfu.clock(5)
        assert pfu.total_busy_cycles == 4

    @given(cuts=st.lists(st.integers(min_value=1, max_value=3), max_size=8))
    @settings(max_examples=50)
    def test_interruption_pattern_never_changes_result(self, cuts):
        """Any interruption pattern yields the same result and the same
        total busy cycles as uninterrupted execution."""
        pfu = loaded_pfu(adder_spec(latency=7))
        pfu.issue(123, 456)
        total = 0
        result = None
        for cut in cuts:
            cycles, result = pfu.clock(cut)
            total += cycles
            if result is not None:
                break
            pfu.issue(0, 0)  # transparent re-issue
        if result is None:
            cycles, result = pfu.clock(100)
            total += cycles
        assert result == 579
        assert total == 7


class TestUsageCounters:
    def test_counts_completions_not_issues(self):
        """§4.5: the count is taken at the END of the instruction so
        interrupted-and-reissued instructions count once."""
        pfu = loaded_pfu()
        pfu.issue(1, 2)
        pfu.clock(1)  # interrupted
        assert pfu.usage_counter == 0
        pfu.issue(0, 0)
        pfu.clock(10)  # completes
        assert pfu.usage_counter == 1

    def test_read_and_clear(self):
        pfu = loaded_pfu(adder_spec(latency=1))
        for _ in range(3):
            pfu.issue(1, 1)
            pfu.clock(5)
        assert pfu.read_and_clear_usage() == 3
        assert pfu.read_and_clear_usage() == 0
        assert pfu.total_completions == 3  # lifetime stat unaffected


class TestBank:
    def test_build(self):
        bank = PFUBank.build(4, 500)
        assert len(bank) == 4
        assert len(bank.free_pfus()) == 4

    def test_build_rejects_zero(self):
        with pytest.raises(PFUError):
            PFUBank.build(0, 500)

    def test_find_instance(self):
        bank = PFUBank.build(2, 500)
        bank.pfu(1).load(adder_spec("findme").instantiate(7, CONFIG))
        found = bank.find_instance(7, "findme")
        assert found is not None and found.index == 1
        assert bank.find_instance(8, "findme") is None
        assert bank.find_instance(7, "other") is None

    def test_configured_and_free_partition(self):
        bank = PFUBank.build(3, 500)
        bank.pfu(0).load(adder_spec().instantiate(1, CONFIG))
        assert len(bank.configured_pfus()) == 1
        assert len(bank.free_pfus()) == 2

    def test_index_bounds(self):
        with pytest.raises(PFUError):
            PFUBank.build(2, 500).pfu(5)
