"""The POrSCHE kernel: processes, quanta, syscalls, termination."""

import pytest

from conftest import adder_spec
from repro.cpu.program import Program
from repro.kernel.porsche import Porsche
from repro.kernel.process import ProcessState


def program(source: str, circuits=(), name="p") -> Program:
    return Program.from_source(name, source, circuit_table=list(circuits))


EXIT_42 = """
main:
    MOV r0, #42
    SWI #0
"""

SPIN_THEN_EXIT = """
main:
    MOV r1, #200
loop:
    SUB r1, r1, #1
    CMP r1, #0
    BNE loop
    MOV r0, #0
    SWI #0
"""


class TestLifecycle:
    def test_exit_status_recorded(self, kernel):
        process = kernel.spawn(program(EXIT_42))
        kernel.run()
        assert process.state is ProcessState.EXITED
        assert process.exit_status == 42
        assert process.completion_cycle is not None

    def test_pids_are_sequential(self, kernel):
        a = kernel.spawn(program(EXIT_42))
        b = kernel.spawn(program(EXIT_42))
        assert (a.pid, b.pid) == (1, 2)

    def test_clock_advances(self, kernel):
        kernel.spawn(program(SPIN_THEN_EXIT))
        kernel.run()
        assert kernel.clock > 600  # ~200 loop iterations

    def test_run_respects_max_cycles(self, kernel):
        looping = program("main:\n  B main")
        kernel.spawn(looping)
        kernel.run(max_cycles=5_000)
        assert kernel.clock >= 5_000
        assert kernel.clock < 50_000

    def test_max_cycles_clamps_the_final_quantum(self, config):
        """The last quantum shrinks to the remaining budget: with
        10,000-cycle quanta and a 5,000-cycle limit, an unclamped run
        would overshoot by ~5,000 cycles."""
        kernel = Porsche(config.derive(quantum_ms=10.0))
        kernel.spawn(program("main:\n  B main"))
        kernel.run(max_cycles=5_000)
        assert kernel.clock >= 5_000
        # Only kernel charges (one context switch) and the atomic retire
        # of the in-flight instruction may spill past the limit, never a
        # whole quantum of CPU work.
        assert kernel.clock <= 5_000 + config.context_switch_cycles + 4

    def test_max_cycles_already_reached_is_a_no_op(self, kernel):
        kernel.spawn(program("main:\n  B main"))
        kernel.run(max_cycles=2_000)
        clock = kernel.clock
        kernel.run(max_cycles=2_000)
        assert kernel.clock == clock

    def test_halt_also_exits(self, kernel):
        process = kernel.spawn(program("MOV r0, #7\nHALT"))
        kernel.run()
        assert process.state is ProcessState.EXITED
        assert process.exit_status == 7


class TestScheduling:
    def test_multiple_processes_all_finish(self, kernel):
        processes = [kernel.spawn(program(SPIN_THEN_EXIT)) for _ in range(4)]
        kernel.run()
        assert all(p.state is ProcessState.EXITED for p in processes)

    def test_quantum_preemption_interleaves(self, config):
        kernel = Porsche(config.derive(quantum_ms=0.05))  # 50-cycle quanta
        a = kernel.spawn(program(SPIN_THEN_EXIT))
        b = kernel.spawn(program(SPIN_THEN_EXIT))
        kernel.run()
        # Both ran in slices: completion cycles are close, not disjoint.
        assert abs(a.completion_cycle - b.completion_cycle) < (
            a.completion_cycle / 2
        )
        assert kernel.stats.context_switches > 5

    def test_single_process_pays_no_context_switches(self, kernel):
        kernel.spawn(program(SPIN_THEN_EXIT))
        kernel.run()
        assert kernel.stats.context_switches == 1  # only the initial entry

    def test_makespan_roughly_linear_pre_contention(self, config):
        results = []
        for n in (1, 2):
            kernel = Porsche(config)
            for _ in range(n):
                kernel.spawn(program(SPIN_THEN_EXIT))
            kernel.run()
            results.append(kernel.clock)
        assert 1.8 < results[1] / results[0] < 2.3


class TestSyscalls:
    def test_write_collects_output(self, kernel):
        process = kernel.spawn(
            program("MOV r0, #5\nSWI #3\nMOV r0, #6\nSWI #3\nMOV r0, #0\nSWI #0")
        )
        kernel.run()
        assert process.output == [5, 6]

    def test_clock_syscall(self, kernel):
        process = kernel.spawn(
            program("SWI #4\nSWI #3".replace("SWI #3", "SWI #3\nMOV r0, #0\nSWI #0"))
        )
        kernel.run()
        # r0 after SWI #4 held the clock; it was written out via SWI #3...
        # simpler: the process exited and wrote one nonzero-ish value.
        assert process.state is ProcessState.EXITED

    def test_yield_ends_quantum(self, config):
        kernel = Porsche(config.derive(quantum_ms=100.0))
        source = """
        main:
            SWI #2
            MOV r0, #0
            SWI #0
        """
        a = kernel.spawn(program(source))
        b = kernel.spawn(program(source))
        kernel.run()
        assert kernel.stats.quanta >= 3  # yields forced extra quanta

    def test_unknown_syscall_kills(self, kernel):
        process = kernel.spawn(program("SWI #99\nHALT"))
        kernel.run()
        assert process.state is ProcessState.KILLED
        assert "syscall" in process.kill_reason

    def test_register_syscall_end_to_end(self, kernel):
        source = """
        main:
            MOV r0, #1          ; CID
            MOV r1, #0          ; table index
            MOV r2, #0          ; no software alternative
            SWI #1
            MOV r0, #11
            MOV r1, #31
            MCR f0, r0
            MCR f1, r1
            CDP #1, f2, f0, f1
            MRC r3, f2
            MOV r0, r3
            SWI #0
        """
        process = kernel.spawn(program(source, circuits=[adder_spec()]))
        kernel.run()
        assert process.state is ProcessState.EXITED
        assert process.exit_status == 42
        assert kernel.stats.fault_actions.get("load") == 1


class TestFaultsAndKills:
    def test_unregistered_cid_kills_process(self, kernel):
        process = kernel.spawn(program("CDP #5, f0, f0, f0\nHALT"))
        kernel.run()
        assert process.state is ProcessState.KILLED
        assert "CID" in process.kill_reason

    def test_memory_fault_kills_process(self, kernel):
        process = kernel.spawn(program("MOV r0, #0\nLDR r1, [r0]\nHALT"))
        kernel.run()
        assert process.state is ProcessState.KILLED
        assert "memory fault" in process.kill_reason

    def test_kill_does_not_stop_other_processes(self, kernel):
        bad = kernel.spawn(program("CDP #5, f0, f0, f0\nHALT"))
        good = kernel.spawn(program(EXIT_42))
        kernel.run()
        assert bad.state is ProcessState.KILLED
        assert good.state is ProcessState.EXITED

    def test_oversized_circuit_registration_kills(self, kernel):
        source = """
        main:
            MOV r0, #1
            MOV r1, #0
            MOV r2, #0
            SWI #1
            HALT
        """
        huge = adder_spec(clbs=kernel.config.pfu_clbs * 2)
        process = kernel.spawn(program(source, circuits=[huge]))
        kernel.run()
        assert process.state is ProcessState.KILLED
        assert "CLB" in process.kill_reason


class TestStarvationGuard:
    REGISTER_AND_CDP = """
    main:
        MOV r0, #1          ; CID
        MOV r1, #0          ; table index
        MOV r2, #0          ; no software alternative
        SWI #1
        MOV r4, #5          ; iterations
        MOV r0, #3
        MOV r1, #4
        MCR f0, r0
        MCR f1, r1
    loop:
        CDP #1, f2, f0, f1
        SUB r4, r4, #1
        CMP r4, #0
        BNE loop
        MRC r0, f2
        SWI #0
    """

    def test_loads_longer_than_quantum_still_make_progress(self, config):
        """Two processes on one PFU whose configuration loads outlast the
        quantum must not evict each other's circuits forever: after a
        fault handler consumes the whole quantum, the faulting
        instruction retires at least one cycle before preemption."""
        # 20-cycle quanta, 8 bytes/cycle config port: every load costs
        # far more than a quantum, so each fault eats its whole quantum.
        kernel = Porsche(
            config.derive(
                pfu_count=1, quantum_ms=0.02, config_bus_bytes_per_cycle=8
            )
        )
        a = kernel.spawn(
            program(self.REGISTER_AND_CDP, circuits=[adder_spec("c0")])
        )
        b = kernel.spawn(
            program(self.REGISTER_AND_CDP, circuits=[adder_spec("c1")], name="q")
        )
        kernel.run(max_cycles=2_000_000)
        assert a.state is ProcessState.EXITED and a.exit_status == 7
        assert b.state is ProcessState.EXITED and b.exit_status == 7
        # The guard was actually exercised: contention forced repeated
        # cross-evictions, each fault outlasting the 20-cycle quantum.
        assert kernel.cis.stats.evictions >= 2
        assert kernel.config.quantum_cycles == 20


class TestAccounting:
    def test_kernel_and_cpu_cycles_sum_to_clock(self, kernel):
        a = kernel.spawn(program(SPIN_THEN_EXIT))
        b = kernel.spawn(program(SPIN_THEN_EXIT))
        kernel.run()
        total = sum(
            p.stats.cpu_cycles + p.stats.kernel_cycles
            for p in (a, b)
        )
        # CIS exit-cleanup cycles are charged to the clock but not to a
        # process; allow that small slack.
        assert 0 <= kernel.clock - total <= 4 * kernel.config.cis_decision_cycles

    def test_quanta_counted_per_process(self, config):
        kernel = Porsche(config.derive(quantum_ms=0.05))
        process = kernel.spawn(program(SPIN_THEN_EXIT))
        kernel.run()
        assert process.stats.quanta > 5
