"""Speculative configuration prefetch: prediction, transfer, pinning."""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import adder_spec
from repro.errors import PrefetchError
from repro.kernel.porsche import Porsche
from repro.kernel.predict import TransferEngine, TransitionModel
from repro.kernel.replacement import make_policy
from repro.machine import Machine
from repro.prefetch import PrefetchPlan, plan_from_dict, plan_to_dict
from repro.sim.experiment import (
    ExperimentSpec,
    outcome_from_dict,
    outcome_to_dict,
    run_experiment,
)
from repro.sim.runner import SweepRunner

PLAN = PrefetchPlan()

POLICIES = ("round_robin", "random", "lru", "second_chance")


class TestPlan:
    def test_defaults_valid(self):
        assert PLAN.min_confidence_pct == 60
        assert PLAN.steal_victims

    def test_rejects_bad_values(self):
        with pytest.raises(PrefetchError):
            PrefetchPlan(min_confidence_pct=0)
        with pytest.raises(PrefetchError):
            PrefetchPlan(min_confidence_pct=101)
        with pytest.raises(PrefetchError):
            PrefetchPlan(min_observations=0)
        with pytest.raises(PrefetchError):
            PrefetchPlan(due_margin_pct=100)

    def test_dict_roundtrip(self):
        plan = PrefetchPlan(min_confidence_pct=75, due_margin_pct=10)
        assert plan_from_dict(plan_to_dict(plan)) == plan


class TestTransitionModel:
    def _trained(self, transitions, plan=PLAN, pid=1):
        """Feed ``transitions`` (a CID sequence) as pid's dispatches."""
        model = TransitionModel(plan)
        for cid in transitions:
            model.observe(pid, cid, "hit")
        return model

    def test_no_prediction_before_min_observations(self):
        model = self._trained([1, 2] * PLAN.min_observations)
        # min_observations switches out of CID 1 have been seen, but
        # only min_observations - 1 out of CID 2.
        assert model.predict_next(1, 1) is not None
        assert model.predict_next(1, 2) is None

    def test_confidence_gate(self):
        # Out of CID 1: three switches to 2, three to 3 -> 50% < 60%.
        model = self._trained([1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3, 1])
        assert model.predict_next(1, 1) is None

    def test_tie_breaks_to_smallest_cid(self):
        plan = PrefetchPlan(min_confidence_pct=50, min_observations=2)
        model = self._trained([1, 3, 1, 2, 1, 3, 1, 2, 1], plan=plan)
        next_cid, confidence = model.predict_next(1, 1)
        assert next_cid == 2
        assert confidence == 50

    def test_alternating_pattern_predicted(self):
        model = self._trained([1, 2] * 8)
        next_cid, confidence = model.predict_next(1, 1)
        assert (next_cid, confidence) == (2, 100)

    def test_per_pid_isolation(self):
        model = TransitionModel(PLAN)
        for cid in [1, 2] * 8:
            model.observe(1, cid, "hit")
        assert model.predict_next(2, 1) is None

    def test_alternating_always_due(self):
        """Mean run length 1: the switch is always imminent."""
        model = self._trained([1, 2] * 8)
        assert model.due(1, 1)
        assert model.due(1, 2)

    def test_long_phase_due_only_near_end(self):
        """Mean run 16: early in a run a switch is not due, late it is."""
        phases = ([1] * 16 + [2] * 16) * 4 + [1]
        model = self._trained(phases)
        assert not model.due(1, 1)  # streak 1 of ~16
        for _ in range(12):
            model.observe(1, 1, "hit")
        assert not model.due(1, 1)  # streak 13: still outside the margin
        model.observe(1, 1, "hit")
        assert model.due(1, 1)  # streak 14: inside the last quarter

    def test_predicted_protects_current_circuit_mid_run(self):
        """Until due, the expected-next circuit is the one running now."""
        phases = ([1] * 16 + [2] * 16) * 4 + [1]
        model = self._trained(phases)
        assert model.predicted(1) == 1
        for _ in range(13):
            model.observe(1, 1, "hit")
        assert model.predicted(1) == 2

    def test_switch_bias_pct(self):
        model = self._trained([1, 1, 1, 2])
        assert model.switch_bias_pct(1, 1) == 33  # 1 switch / 3 dispatches
        assert model.switch_bias_pct(1, 2) is None

    def test_forget_drops_everything(self):
        model = self._trained([1, 2] * 8)
        model.forget(1)
        assert model.predict_next(1, 1) is None
        assert model.last_cid(1) is None
        assert model.snapshot() == TransitionModel(PLAN).snapshot()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),  # pid
                st.integers(min_value=1, max_value=6),  # cid
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_snapshot_roundtrips_bit_identically(self, events):
        model = TransitionModel(PLAN)
        for pid, cid in events:
            model.observe(pid, cid, "hit")
        snap = json.loads(json.dumps(model.snapshot()))
        clone = TransitionModel(PLAN)
        clone.restore(snap)
        assert clone.snapshot() == model.snapshot()
        for pid in {pid for pid, _ in events}:
            assert clone.predicted(pid) == model.predicted(pid)
            last = model.last_cid(pid)
            if last is not None:
                assert clone.predict_next(pid, last) == (
                    model.predict_next(pid, last)
                )


class TestTransferEngine:
    def test_demand_traffic_stalls_the_stream(self):
        engine = TransferEngine()
        engine.start(pid=1, cid=2, pfu=0, total=100, now=50)
        assert engine.remaining(now=50) == 100
        engine.demand_traffic(30)
        assert engine.remaining(now=50) == 130
        assert engine.remaining(now=200) == 0  # finished, awaiting settle

    def test_demand_traffic_without_transfer_is_free(self):
        engine = TransferEngine()
        engine.demand_traffic(500)  # no-op, must not raise
        assert not engine.busy

    def test_pins_only_its_target(self):
        engine = TransferEngine()
        engine.start(pid=1, cid=2, pfu=3, total=10, now=0)
        assert engine.pinned(3)
        assert not engine.pinned(0)
        engine.cancel()
        assert not engine.pinned(3)

    def test_one_in_flight_only(self):
        engine = TransferEngine()
        engine.start(pid=1, cid=2, pfu=0, total=10, now=0)
        with pytest.raises(AssertionError):
            engine.start(pid=2, cid=3, pfu=1, total=10, now=0)

    def test_snapshot_roundtrips_mid_flight(self):
        engine = TransferEngine()
        engine.start(pid=1, cid=2, pfu=3, total=100, now=7)
        engine.demand_traffic(13)
        snap = json.loads(json.dumps(engine.snapshot()))
        clone = TransferEngine()
        clone.restore(snap)
        assert clone.snapshot() == engine.snapshot()
        assert clone.matches(1, 2) and clone.pinned(3)
        assert clone.remaining(now=7) == 113


# Reference points captured before the transfer-cost arithmetic was
# deduplicated into CIS._charged_transfer and before the predictive
# layer landed.  Prefetch is off (the default) here: every makespan and
# every demand-side counter must stay exact.
GOLDEN = [
    # (workload, instances, quantum_ms, items,
    #  makespan, loads, evictions, static, state, kernel)
    ("echo", 2, 10.0, 64, 4563, 4, 0, 137_132, 400, 162),
    ("echo", 3, 1.0, 64, 30_118, 576, 572, 19_747_008, 114_800, 22_475),
    ("alpha", 2, 10.0, 48, 2145, 2, 0, 84_048, 144, 98),
    ("twofish", 2, 10.0, 8, 1111, 2, 0, 110_592, 256, 124),
    ("echo", 5, 1.0, 64, 50_200, 960, 956, 32_911_680, 191_600, 37_461),
]


class TestChargedTransferRegression:
    @pytest.mark.parametrize(
        "workload,instances,quantum_ms,items,makespan,loads,evictions,"
        "static,state,kernel",
        GOLDEN,
    )
    def test_demand_accounting_unchanged(
        self, workload, instances, quantum_ms, items,
        makespan, loads, evictions, static, state, kernel,
    ):
        spec = ExperimentSpec(
            workload=workload, instances=instances,
            quantum_ms=quantum_ms, items=items, seed=7,
        )
        outcome = run_experiment(spec, verify=True)
        assert outcome.verified
        assert outcome.makespan == makespan
        assert outcome.cis["loads"] == loads
        assert outcome.cis["evictions"] == evictions
        assert outcome.cis["static_bytes_moved"] == static
        assert outcome.cis["state_bytes_moved"] == state
        assert outcome.cis["kernel_cycles"] == kernel


def _prefetch_kernel(config, policy_name, **overrides):
    cfg = config.derive(prefetch=PLAN, **overrides)
    return Porsche(cfg, make_policy(policy_name, seed=7))


def _spawn_registered(kernel, name, cid=1):
    from repro.cpu.program import Program

    program = Program.from_source(
        f"stub-{name}", "main: NOP\nHALT",
        circuit_table=[adder_spec(name)],
    )
    process = kernel.spawn(program)
    kernel.cis.register(process, cid=cid, table_index=0, soft_address=None)
    return process


class TestPinnedEviction:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("pinned_index", range(4))
    def test_no_policy_evicts_a_mid_transfer_pfu(
        self, config, policy_name, pinned_index
    ):
        """Satellite guarantee: whatever the replacement policy and
        whichever PFU the engine streams into, a demand swap never
        selects the pinned PFU while other victims exist."""
        kernel = _prefetch_kernel(config, policy_name)
        residents = [
            _spawn_registered(kernel, f"c{i}", cid=1) for i in range(4)
        ]
        for process in residents:
            kernel.cis.handle_fault(process, cid=1)
        # Pin one resident's PFU: a speculative transfer is in flight to
        # it on behalf of residents[0] (a CID it has not registered —
        # settle never fires because the end lies far in the future).
        kernel.cis.engine.start(
            pid=residents[0].pid, cid=99, pfu=pinned_index,
            total=10**9, now=kernel.trace.now(),
        )
        pinned_owner = next(
            p for p in residents
            if p.registration(1).pfu_index == pinned_index
        )
        demander = _spawn_registered(kernel, "late", cid=1)
        __, action = kernel.cis.handle_fault(demander, cid=1)
        assert action == "swap"
        assert pinned_owner.registration(1).pfu_index == pinned_index

    def test_all_pinned_degrades_to_demand_load(self, config):
        """Demand beats speculation: when the pin leaves nothing to
        evict, the prefetch is cancelled and its target PFU reclaimed
        for a plain demand load — never a kill, never a stall."""
        kernel = _prefetch_kernel(config, "round_robin", pfu_count=1)
        owner = _spawn_registered(kernel, "spec", cid=1)
        # The single (free) PFU is mid-transfer for `owner`'s circuit.
        kernel.cis.engine.start(
            pid=owner.pid, cid=99, pfu=0,
            total=10**9, now=kernel.trace.now(),
        )
        demander = _spawn_registered(kernel, "demand", cid=1)
        __, action = kernel.cis.handle_fault(demander, cid=1)
        assert action == "load"
        assert demander.registration(1).pfu_index == 0
        assert kernel.cis.engine.entry is None
        assert kernel.trace.counters.prefetch.cancelled == {"demand": 1}


SCALE = 1e-3


def _spec(workload="echo", instances=5, prefetch=PLAN, **kwargs):
    kwargs.setdefault("items", 64)
    return ExperimentSpec(
        workload=workload,
        instances=instances,
        quantum_ms=1.0,
        scale=SCALE,
        seed=7,
        prefetch=prefetch,
        **kwargs,
    )


class TestRuntimePrefetch:
    def test_prefetch_beats_baseline_under_contention(self):
        off = run_experiment(_spec(prefetch=None), verify=True)
        on = run_experiment(_spec(), verify=True)
        assert off.verified and on.verified
        assert on.makespan < off.makespan
        assert on.prefetch["issued"] > 0
        assert on.prefetch["hits"] > 0
        assert on.prefetch["overlap_cycles"] > 0

    def test_disabled_by_default(self):
        spec = ExperimentSpec(workload="echo", instances=2, items=64)
        assert spec.prefetch is None
        outcome = run_experiment(spec)
        assert outcome.prefetch == {}

    def test_outcome_dict_roundtrip(self):
        outcome = run_experiment(_spec(instances=3), verify=True)
        payload = outcome_to_dict(outcome)
        assert payload["prefetch"] == outcome.prefetch
        clone = outcome_from_dict(payload)
        assert clone.prefetch == outcome.prefetch

    def test_outcome_identical_across_tiers(self, monkeypatch):
        outcomes = []
        for tier in ("step", "closure", "block", "jit"):
            monkeypatch.setenv("REPRO_EXEC_TIER", tier)
            outcomes.append(
                outcome_to_dict(
                    run_experiment(_spec(instances=3), verify=True)
                )
            )
        assert all(payload == outcomes[0] for payload in outcomes[1:])

    def test_jobs_bit_identical(self):
        specs = [_spec(instances=n) for n in (2, 3)]
        serial = SweepRunner(jobs=1).run(specs, verify=True)
        parallel = SweepRunner(jobs=2).run(specs, verify=True)
        assert [outcome_to_dict(o) for o in serial] == [
            outcome_to_dict(o) for o in parallel
        ]

    def test_checkpoint_resume_bit_identical(self):
        spec = _spec(instances=3)
        straight = Machine.from_spec(spec)
        straight.spawn_instances()
        straight.run()
        want = json.dumps(
            outcome_to_dict(straight.outcome(verify=True)), sort_keys=True
        )
        for quanta in (1, 25, 120):
            machine = Machine.from_spec(spec)
            machine.spawn_instances()
            machine.run_quanta(quanta)
            resumed = Machine.resume(
                json.loads(json.dumps(machine.checkpoint()))
            )
            resumed.run()
            got = json.dumps(
                outcome_to_dict(resumed.outcome(verify=True)), sort_keys=True
            )
            assert got == want, quanta

    def test_checkpoint_resume_mid_transfer(self):
        """A checkpoint taken while the engine holds an in-flight
        speculative transfer must resume to the same bytes — the
        transfer's absolute end cycle rides through JSON.  The bursty
        workload leaves transfers in flight at many quantum boundaries
        (echo's are always resolved within the faulting quantum)."""
        spec = _spec(workload="burst", instances=3, items=None)
        straight = Machine.from_spec(spec)
        straight.spawn_instances()
        straight.run()
        want = json.dumps(
            outcome_to_dict(straight.outcome(verify=True)), sort_keys=True
        )
        machine = Machine.from_spec(spec)
        machine.spawn_instances()
        caught = False
        while not machine.finished:
            machine.run_quanta(1)
            if machine.kernel.cis.engine.entry is not None:
                caught = True
                break
        assert caught, "no quantum boundary caught a transfer in flight"
        snap = json.loads(json.dumps(machine.checkpoint()))
        assert snap["kernel"]["prefetch"]["engine"]["entry"] is not None
        resumed = Machine.resume(snap)
        assert resumed.kernel.cis.engine.entry == (
            machine.kernel.cis.engine.entry
        )
        resumed.run()
        got = json.dumps(
            outcome_to_dict(resumed.outcome(verify=True)), sort_keys=True
        )
        assert got == want


class TestSpecKeyDiscipline:
    def test_serialised_spec_omits_disabled_prefetch(self):
        """prefetch=None must not appear in the serialised spec, so
        every pre-PR cache entry and checkpoint stays valid
        byte-for-byte."""
        from repro.machine import _spec_to_dict

        spec = ExperimentSpec(workload="echo", instances=2, items=64)
        assert "prefetch" not in _spec_to_dict(spec)
        assert "prefetch" in _spec_to_dict(replace(spec, prefetch=PLAN))

    def test_serialised_spec_roundtrips_plan(self):
        from repro.machine import _spec_from_dict, _spec_to_dict

        spec = _spec(prefetch=PrefetchPlan(min_confidence_pct=80))
        assert _spec_from_dict(_spec_to_dict(spec)) == spec

    def test_spec_key_changes_when_enabled(self):
        base = ExperimentSpec(workload="echo", instances=2, items=64)
        assert base.spec_key() != replace(base, prefetch=PLAN).spec_key()

    def test_plan_changes_key(self):
        one = _spec(prefetch=PrefetchPlan(due_margin_pct=20))
        two = _spec(prefetch=PrefetchPlan(due_margin_pct=25))
        assert one.spec_key() != two.spec_key()

    def test_outcome_dict_omits_disabled_prefetch(self):
        outcome = run_experiment(_spec(instances=2, prefetch=None))
        assert "prefetch" not in outcome_to_dict(outcome)

    def test_checkpoint_omits_disabled_prefetch(self):
        machine = Machine.from_spec(_spec(instances=2, prefetch=None))
        machine.spawn_instances()
        machine.run_quanta(5)
        snap = machine.checkpoint()
        assert "prefetch" not in snap["kernel"]
        for proc in snap["kernel"]["processes"].values():
            for entry in proc["registrations"]:
                assert "prefetched" not in entry
