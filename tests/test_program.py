"""Program images and loading."""

import pytest

from conftest import adder_spec
from repro.cpu.program import Program, ResultRegion
from repro.errors import WorkloadError


def source_with_data() -> str:
    return """
    .data
    dst: .word 0, 0
    .text
    main:
        NOP
        HALT
    """


class TestFromSource:
    def test_builds_and_validates(self):
        program = Program.from_source("p", source_with_data())
        assert program.name == "p"
        assert len(program.image.instructions) == 2

    def test_result_labels_resolve(self):
        program = Program.from_source(
            "p", source_with_data(), result_labels={"dst": 8}
        )
        assert program.result_regions["dst"] == ResultRegion(
            address=0x1000, length=8
        )

    def test_unknown_result_label_rejected(self):
        with pytest.raises(Exception):
            Program.from_source(
                "p", source_with_data(), result_labels={"nope": 8}
            )

    def test_empty_program_rejected(self):
        with pytest.raises(WorkloadError):
            Program.from_source("p", "; nothing")

    def test_oversized_data_rejected(self):
        source = ".data\nbig: .space 100000\n.text\nNOP"
        with pytest.raises(WorkloadError):
            Program.from_source("p", source, memory_size=64 * 1024)

    def test_duplicate_circuit_names_rejected(self):
        with pytest.raises(WorkloadError):
            Program.from_source(
                "p",
                source_with_data(),
                circuit_table=[adder_spec("x"), adder_spec("x")],
            )


class TestRuntimeSupport:
    def test_build_memory_contains_data(self):
        source = ".data\nv: .word 0xABCD\n.text\nNOP"
        program = Program.from_source("p", source)
        memory = program.build_memory()
        assert memory.load_word(0x1000) == 0xABCD

    def test_build_memory_is_fresh_per_call(self):
        program = Program.from_source("p", source_with_data())
        first = program.build_memory()
        first.store_word(0x1000, 7)
        second = program.build_memory()
        assert second.load_word(0x1000) == 0

    def test_circuit_lookup(self):
        program = Program.from_source(
            "p", source_with_data(), circuit_table=[adder_spec("a")]
        )
        assert program.circuit(0).name == "a"
        with pytest.raises(WorkloadError):
            program.circuit(1)

    def test_read_result(self):
        program = Program.from_source(
            "p", source_with_data(), result_labels={"dst": 8}
        )
        memory = program.build_memory()
        memory.store_word(0x1000, 0x01020304)
        assert program.read_result(memory, "dst")[:4] == bytes(
            [4, 3, 2, 1]
        )
        with pytest.raises(WorkloadError):
            program.read_result(memory, "other")
