"""The public API surface: what ``import repro`` promises."""

import subprocess
import sys

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_headline_types(self):
        assert repro.MachineConfig is not None
        assert repro.Porsche is not None
        assert callable(repro.get_workload)
        assert callable(repro.figure2)
        assert callable(repro.run_experiment)

    def test_quickstart_snippet_from_the_readme(self):
        """The README's quickstart must keep working verbatim."""
        kernel = repro.Porsche(repro.MachineConfig(cycles_per_ms=1000))
        program = repro.get_workload("alpha").build(items=16)
        process = kernel.spawn(program)
        kernel.run()
        assert process.completion_cycle is not None
        assert process.read_result("dst") == repro.get_workload(
            "alpha"
        ).expected(16)


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro",
                "run", "alpha", "1",
                "--scale", "0.000125",
                "--quiet",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "makespan" in result.stdout

    def test_help(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "fig2" in result.stdout and "fig3" in result.stdout


class TestErrorHierarchy:
    def test_all_library_errors_share_a_base(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_cpu_events_are_not_errors(self):
        """Traps are control flow, not failures."""
        from repro.cpu.exceptions import CPUEvent
        from repro.errors import ReproError

        assert not issubclass(CPUEvent, ReproError)
