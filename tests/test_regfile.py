"""The FPL unit register file."""

import pytest

from repro.core.regfile import FPLRegisterFile
from repro.errors import DispatchError


class TestRegisterFile:
    def test_starts_zeroed(self):
        regs = FPLRegisterFile(size=16)
        assert all(regs.read(i) == 0 for i in range(16))

    def test_write_read(self):
        regs = FPLRegisterFile()
        regs.write(3, 1234)
        assert regs.read(3) == 1234

    def test_values_masked(self):
        regs = FPLRegisterFile()
        regs.write(0, -1)
        assert regs.read(0) == 0xFFFFFFFF

    def test_bounds(self):
        regs = FPLRegisterFile(size=16)
        with pytest.raises(DispatchError):
            regs.read(16)
        with pytest.raises(DispatchError):
            regs.write(-1, 0)

    def test_save_restore(self):
        regs = FPLRegisterFile(size=4)
        for i in range(4):
            regs.write(i, i * 10)
        saved = regs.save()
        regs.write(0, 999)
        regs.restore(saved)
        assert regs.read(0) == 0

    def test_save_is_a_copy(self):
        regs = FPLRegisterFile(size=4)
        saved = regs.save()
        regs.write(0, 1)
        assert saved[0] == 0

    def test_restore_length_checked(self):
        regs = FPLRegisterFile(size=4)
        with pytest.raises(DispatchError):
            regs.restore([0, 0])

    def test_needs_positive_size(self):
        with pytest.raises(DispatchError):
            FPLRegisterFile(size=0)
