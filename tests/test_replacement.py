"""Replacement policies (§4.5, §5.1.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import adder_spec
from repro.config import MachineConfig
from repro.core.pfu import PFUBank
from repro.errors import KernelError
from repro.kernel.replacement import (
    LRUReplacement,
    POLICY_NAMES,
    RandomReplacement,
    RoundRobinReplacement,
    SecondChanceReplacement,
    make_policy,
)

CONFIG = MachineConfig()


def loaded_bank(count: int = 4) -> PFUBank:
    bank = PFUBank.build(count, 500)
    for index in range(count):
        bank.pfu(index).load(adder_spec(f"c{index}").instantiate(1, CONFIG))
    return bank


def complete_one(bank: PFUBank, index: int) -> None:
    pfu = bank.pfu(index)
    pfu.issue(1, 2)
    pfu.clock(100)


class TestFactory:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_make_policy(self, name):
        assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(KernelError):
            make_policy("clairvoyant")


class TestRoundRobin:
    def test_cycles_through_pfus(self):
        policy = RoundRobinReplacement()
        bank = loaded_bank()
        picks = [policy.choose(list(bank), bank).index for _ in range(6)]
        assert picks == [0, 1, 2, 3, 0, 1]

    def test_skips_non_candidates(self):
        policy = RoundRobinReplacement()
        bank = loaded_bank()
        candidates = [bank.pfu(1), bank.pfu(3)]
        picks = [policy.choose(candidates, bank).index for _ in range(4)]
        assert picks == [1, 3, 1, 3]

    def test_reset(self):
        policy = RoundRobinReplacement()
        bank = loaded_bank()
        policy.choose(list(bank), bank)
        policy.reset()
        assert policy.choose(list(bank), bank).index == 0

    def test_no_candidates_rejected(self):
        with pytest.raises(KernelError):
            RoundRobinReplacement().choose([], loaded_bank())


class TestRandom:
    def test_deterministic_with_seed(self):
        bank = loaded_bank()
        seq_a = [
            make_policy("random", seed=5).choose(list(bank), bank).index
            for _ in range(1)
        ]
        seq_b = [
            make_policy("random", seed=5).choose(list(bank), bank).index
            for _ in range(1)
        ]
        assert seq_a == seq_b

    def test_covers_all_candidates_eventually(self):
        policy = RandomReplacement()
        bank = loaded_bank()
        picks = {policy.choose(list(bank), bank).index for _ in range(100)}
        assert picks == {0, 1, 2, 3}


class TestLRU:
    def test_untouched_pfu_evicted_first(self):
        policy = LRUReplacement()
        bank = loaded_bank()
        complete_one(bank, 0)
        complete_one(bank, 2)
        policy.choose(list(bank), bank)  # observes usage
        complete_one(bank, 0)
        victim = policy.choose(list(bank), bank)
        assert victim.index in (1, 3)  # never used

    def test_recency_ordering(self):
        policy = LRUReplacement()
        bank = loaded_bank()
        # Touch each PFU in its own observation epoch.
        for index in (3, 1, 0, 2):
            complete_one(bank, index)
            policy.choose([bank.pfu(0)], bank)  # observation only
        victim = policy.choose(list(bank), bank)
        assert victim.index == 3  # least recently completed

    def test_decision_cost_includes_counter_reads(self):
        policy = LRUReplacement()
        plain = RoundRobinReplacement()
        assert policy.decision_cycles(CONFIG) > plain.decision_cycles(CONFIG)


class TestSecondChance:
    def test_referenced_pfus_get_second_chance(self):
        policy = SecondChanceReplacement()
        bank = loaded_bank()
        complete_one(bank, 0)  # PFU 0 referenced
        victim = policy.choose(list(bank), bank)
        assert victim.index == 1  # 0 spared, hand moves on

    def test_eventually_picks_previously_referenced(self):
        policy = SecondChanceReplacement()
        bank = loaded_bank()
        for index in range(4):
            complete_one(bank, index)
        victim = policy.choose(list(bank), bank)
        # All referenced: first sweep clears, second sweep picks.
        assert victim.index in range(4)

    def test_reset_clears_hand_and_bits(self):
        policy = SecondChanceReplacement()
        bank = loaded_bank()
        complete_one(bank, 0)
        policy.choose(list(bank), bank)
        policy.reset()
        victim = policy.choose(list(bank), bank)
        assert victim.index == 0

    def test_fallback_respects_hand_position(self):
        """When every candidate's reference bit stays set, the fallback
        must evict at the hand (advancing it), not pin candidates[0]."""

        class StickyBits(dict):
            # Reference bits that refuse to clear: models candidates
            # being re-referenced concurrently with the sweep.
            def __setitem__(self, key, value):
                if value:
                    super().__setitem__(key, value)

        policy = SecondChanceReplacement()
        bank = loaded_bank()
        policy._referenced = StickyBits(
            {index: True for index in range(len(bank))}
        )
        policy._hand = 2
        victim = policy.choose(list(bank), bank)
        assert victim.index == 2  # the hand, not candidates[0]
        assert policy._hand == 3  # and the clock advanced past it

    def test_fallback_keeps_rotating(self):
        class StickyBits(dict):
            def __setitem__(self, key, value):
                if value:
                    super().__setitem__(key, value)

        policy = SecondChanceReplacement()
        bank = loaded_bank()
        policy._referenced = StickyBits(
            {index: True for index in range(len(bank))}
        )
        picks = [policy.choose(list(bank), bank).index for _ in range(5)]
        assert picks == [0, 1, 2, 3, 0]


@given(
    policy_name=st.sampled_from(POLICY_NAMES),
    candidate_indices=st.sets(
        st.integers(min_value=0, max_value=3), min_size=1
    ),
    rounds=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=60)
def test_policy_always_returns_a_candidate(policy_name, candidate_indices, rounds):
    policy = make_policy(policy_name, seed=3)
    bank = loaded_bank()
    candidates = [bank.pfu(i) for i in sorted(candidate_indices)]
    for _ in range(rounds):
        victim = policy.choose(candidates, bank)
        assert victim.index in candidate_indices


class TestQuarantineExclusion:
    """The CIS filters quarantined PFUs out of the candidate list (fault
    recovery, §repro.faults); no policy may resurrect one — even when it
    looks like the most attractive victim."""

    QUARANTINED = 2

    def candidates(self, bank):
        return [pfu for pfu in bank if pfu.index != self.QUARANTINED]

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_never_selects_quarantined(self, name):
        policy = make_policy(name, seed=3)
        bank = loaded_bank()
        picks = [
            policy.choose(self.candidates(bank), bank).index
            for _ in range(12)
        ]
        assert self.QUARANTINED not in picks

    def test_lru_skips_quarantined_even_when_oldest(self):
        policy = LRUReplacement()
        bank = loaded_bank()
        # Every healthy PFU just completed work; the quarantined one is
        # idle, i.e. the perfect LRU victim — it still must not be picked.
        for index in range(len(bank)):
            if index != self.QUARANTINED:
                complete_one(bank, index)
        victim = policy.choose(self.candidates(bank), bank)
        assert victim.index != self.QUARANTINED

    def test_second_chance_skips_quarantined_when_all_referenced(self):
        policy = SecondChanceReplacement()
        bank = loaded_bank()
        # Pin every healthy PFU: all reference bits set.  The two-sweep
        # clock and its fallback must both stay inside the candidates.
        for index in range(len(bank)):
            if index != self.QUARANTINED:
                complete_one(bank, index)
        picks = [
            policy.choose(self.candidates(bank), bank).index
            for _ in range(8)
        ]
        assert self.QUARANTINED not in picks

    def test_all_quarantined_is_an_error_not_a_pick(self):
        policy = make_policy("round_robin")
        bank = loaded_bank()
        with pytest.raises(KernelError):
            policy.choose([], bank)
