"""The sweep engine: parallel fan-out, deterministic merge, result cache."""

import csv
import io
import multiprocessing
import os
import pickle
import signal
import time

import pytest

import repro.sim.jobs as jobs_module
import repro.sim.runner as runner_module
from repro.errors import ExperimentError
from repro.sim.experiment import (
    ExperimentSpec,
    run_experiment,
    run_experiment_capturing,
)
from repro.sim.figures import figure2
from repro.sim.runner import (
    RESULTS_VERSION,
    CheckpointStore,
    ResultCache,
    SweepRunner,
)

SCALE = 1 / 8000


def tiny_fig2(runner=None, progress=None):
    return figure2(
        scale=SCALE,
        instances=(1, 2),
        workloads=("alpha",),
        quanta=(1.0,),
        policies=("round_robin",),
        runner=runner,
        progress=progress,
    )


def spec(**overrides) -> ExperimentSpec:
    values = dict(workload="alpha", instances=1, quantum_ms=1.0, scale=SCALE)
    values.update(overrides)
    return ExperimentSpec(**values)


class TestSpecKey:
    def test_stable_across_instances(self):
        assert spec().spec_key() == spec().spec_key()

    def test_sensitive_to_every_axis(self):
        base = spec().spec_key()
        for change in (
            dict(workload="echo"),
            dict(instances=2),
            dict(quantum_ms=10.0),
            dict(policy="random"),
            dict(soft=True),
            dict(scale=1 / 4000),
            dict(seed=7),
        ):
            assert spec(**change).spec_key() != base, change

    def test_covers_resolved_config(self):
        # Same spec fields, different machine: pfu_count feeds the
        # resolved MachineConfig, which the key must cover.
        assert spec(pfu_count=2).spec_key() != spec().spec_key()


class TestParallelEquivalence:
    def test_parallel_bit_identical_to_serial(self):
        serial = tiny_fig2()
        parallel = tiny_fig2(runner=SweepRunner(jobs=4))
        assert serial.to_csv() == parallel.to_csv()
        for left, right in zip(serial.series, parallel.series):
            assert left.label == right.label
            assert left.ys() == right.ys()
            assert [p.detail for p in left.points] == [
                p.detail for p in right.points
            ]

    def test_results_merge_in_spec_order(self):
        specs = [spec(instances=n) for n in (3, 1, 2)]
        outcomes = SweepRunner(jobs=2).run(specs)
        assert [outcome.spec for outcome in outcomes] == specs

    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError):
            SweepRunner(jobs=0)


#: Parent pid recorded at import: lets the fragile worker below die only
#: inside forked pool children, never in the pytest process itself.
_PARENT_PID = os.getpid()


def _fragile_execute_slice(payload):
    """Worker stand-in: hard-kill the child on the second sweep point.

    Module-level so the pool can resolve it by name; forked children
    inherit the monkeypatched binding from the parent.
    """
    index = payload[1].instances  # specs below use instances 1..3
    if index == 2 and os.getpid() != _PARENT_PID:
        os.kill(os.getpid(), signal.SIGKILL)
    return jobs_module.__dict__["_real_execute_slice"](payload)


class TestWorkerDeath:
    def test_dead_worker_points_retry_and_degrade(self, monkeypatch):
        specs = [spec(instances=n) for n in (1, 2, 3)]
        reference = SweepRunner().run(specs)

        monkeypatch.setitem(
            jobs_module.__dict__, "_real_execute_slice",
            jobs_module._execute_slice,
        )
        monkeypatch.setattr(
            jobs_module, "_execute_slice", _fragile_execute_slice
        )
        runner = SweepRunner(jobs=2)
        outcomes = runner.run(specs)
        assert outcomes == reference
        assert runner.stats.worker_retries >= 1
        assert runner.stats.executed == len(specs)


def _slow_execute_slice(payload):
    """Worker stand-in: make every point take a human-visible beat."""
    time.sleep(0.4)
    return jobs_module.__dict__["_real_execute_slice"](payload)


class TestGracefulInterrupt:
    def test_sigint_mid_sweep_leaves_no_orphans(self, monkeypatch):
        """A slow sweep interrupted mid-run cancels what is pending,
        shuts the pool down, and leaves no worker processes behind."""
        monkeypatch.setitem(
            jobs_module.__dict__, "_real_execute_slice",
            jobs_module._execute_slice,
        )
        monkeypatch.setattr(
            jobs_module, "_execute_slice", _slow_execute_slice
        )
        specs = [spec(instances=1, seed=n) for n in range(8)]
        runner = SweepRunner(jobs=2)

        def interrupt(done, total, index, cached):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            runner.run(specs, progress=interrupt)
        # The pool and dispatcher are gone: no orphaned children.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, (
                f"orphans: {multiprocessing.active_children()}"
            )
            time.sleep(0.05)

    def test_shutdown_cancels_pending_jobs(self):
        from repro.sim.jobs import JobState, Scheduler

        scheduler = Scheduler(workers=1)
        first = scheduler.submit(spec(instances=1), tenant="t")
        queued = [
            scheduler.submit(spec(instances=1, seed=n), tenant="t")
            for n in range(1, 5)
        ]
        scheduler.shutdown(cancel_pending=True)
        first.wait(timeout=30)
        assert not multiprocessing.active_children()
        states = {job.state for job in queued}
        assert states <= {JobState.CANCELLED, JobState.DONE}
        assert JobState.CANCELLED in states or all(
            job.done() for job in queued
        )


class TestResultCache:
    def test_hit_skips_execution(self, tmp_path, monkeypatch):
        calls = []

        def counting(point, verify=False, **kwargs):
            calls.append(point)
            return run_experiment_capturing(point, verify=verify, **kwargs)

        monkeypatch.setattr(
            jobs_module, "run_experiment_capturing", counting
        )
        point = spec()
        cold = SweepRunner(cache=ResultCache(tmp_path))
        first = cold.run([point])
        assert len(calls) == 1
        assert cold.stats.executed == 1 and cold.stats.cache_hits == 0

        warm = SweepRunner(cache=ResultCache(tmp_path))
        second = warm.run([point])
        assert len(calls) == 1  # served from disk, not re-executed
        assert warm.stats.executed == 0 and warm.stats.cache_hits == 1
        assert second[0].makespan == first[0].makespan
        assert second[0].cis == first[0].cis

    def test_spec_change_invalidates(self, tmp_path, monkeypatch):
        calls = []

        def counting(point, verify=False, **kwargs):
            calls.append(point)
            return run_experiment_capturing(point, verify=verify, **kwargs)

        monkeypatch.setattr(
            jobs_module, "run_experiment_capturing", counting
        )
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run([spec()])
        SweepRunner(cache=cache).run([spec(quantum_ms=2.0)])
        assert len(calls) == 2

    def test_verify_flag_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key(spec(), verify=False) != cache.key(spec(), verify=True)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = spec()
        SweepRunner(cache=cache).run([point])
        path = cache.path(cache.key(point, verify=False))
        path.write_bytes(b"not a pickle")
        assert cache.load(point, verify=False) is None

    def test_corrupt_entry_is_evicted(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        point = spec()
        SweepRunner(cache=cache).run([point])
        path = cache.path(cache.key(point, verify=False))
        path.write_bytes(b"not a pickle")
        assert cache.load(point, verify=False) is None
        assert cache.evictions == 1
        assert not path.exists()  # cannot shadow the slot forever
        assert "dropped corrupt result-cache" in capsys.readouterr().err
        # The next sweep re-executes and repopulates the slot cleanly.
        runner = SweepRunner(cache=cache)
        runner.run([point])
        assert runner.stats.cache_evictions == 1
        assert runner.stats.executed == 1
        assert cache.load(point, verify=False) is not None

    def test_missing_entry_is_not_an_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(spec(), verify=False) is None
        assert cache.evictions == 0

    def test_foreign_valid_entry_is_left_alone(self, tmp_path):
        # A valid pickle for some *other* point (key collision / legacy
        # scheme) is a miss but must not be deleted.
        cache = ResultCache(tmp_path)
        point, other = spec(), spec(instances=2)
        (outcome,) = SweepRunner(cache=cache).run([other])
        path = cache.path(cache.key(point, verify=False))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps(outcome))
        assert cache.load(point, verify=False) is None
        assert cache.evictions == 0
        assert path.exists()

    def test_entry_roundtrips_through_pickle(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = spec()
        (outcome,) = SweepRunner(cache=cache).run([point])
        path = cache.path(cache.key(point, verify=False))
        assert pickle.loads(path.read_bytes()).makespan == outcome.makespan

    def test_version_tag_in_key(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        before = cache.key(spec(), verify=False)
        monkeypatch.setattr(runner_module, "RESULTS_VERSION",
                            RESULTS_VERSION + 1)
        assert cache.key(spec(), verify=False) != before


class TestTenantNamespaces:
    def test_namespaces_share_hits(self, tmp_path):
        """Objects are content-addressed and shared: what one tenant
        computed, another tenant's lookup finds."""
        alice = ResultCache(tmp_path, namespace="alice")
        point = spec()
        (outcome,) = SweepRunner(cache=alice).run([point])
        bob = alice.for_namespace("bob")
        assert bob.load(point, verify=False) == outcome

    def test_namespace_refs_track_usage(self, tmp_path):
        alice = ResultCache(tmp_path, namespace="alice")
        point = spec()
        SweepRunner(cache=alice).run([point])
        assert alice.namespaces() == ["alice"]
        bob = alice.for_namespace("bob")
        bob.load(point, verify=False)  # cross-tenant hit records a ref
        assert alice.namespaces() == ["alice", "bob"]
        stats = alice.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["namespaces"] == {"alice": 1, "bob": 1}

    def test_for_namespace_shares_eviction_counter(self, tmp_path):
        alice = ResultCache(tmp_path, namespace="alice")
        point = spec()
        SweepRunner(cache=alice).run([point])
        bob = alice.for_namespace("bob")
        alice.path(alice.key(point, verify=False)).write_bytes(b"garbage")
        assert bob.load(point, verify=False) is None
        assert alice.evictions == 1 and bob.evictions == 1

    def test_invalid_namespace_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultCache(tmp_path, namespace="../escape")
        with pytest.raises(ExperimentError):
            SweepRunner(tenant="bad/slash")

    def test_prune_by_age(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = spec()
        SweepRunner(cache=cache).run([point])
        key = cache.key(point, verify=False)
        path = cache.path(key)
        old = time.time() - 10 * 86400
        # Both the object and its namespace ref must age out: a fresh
        # ref (anyone's) pins the object.
        os.utime(path, (old, old))
        os.utime(cache.ref_path(key), (old, old))
        report = cache.prune(max_age_s=86400)
        assert report["removed"] == 1 and report["kept"] == 0
        assert not path.exists()
        assert report["dangling_refs"] == 1  # ref followed its object
        assert cache.load(point, verify=False) is None
        assert cache.evictions == 0  # pruning is not corruption

    def test_prune_respects_other_tenants_refs(self, tmp_path):
        """An object is only as unused as its *newest* reference: one
        tenant going idle must never prune a shared object another
        tenant's namespace still points at."""
        alice = ResultCache(tmp_path, namespace="alice")
        point = spec()
        (outcome,) = SweepRunner(cache=alice).run([point])
        bob = alice.for_namespace("bob")
        assert bob.load(point, verify=False) == outcome  # bob's ref is fresh

        key = alice.key(point, verify=False)
        obj = alice.path(key)
        old = time.time() - 10 * 86400
        os.utime(obj, (old, old))                  # object looks idle ...
        os.utime(alice.ref_path(key), (old, old))  # ... and alice moved on
        report = alice.prune(max_age_s=86400)
        assert report == {"removed": 0, "kept": 1, "dangling_refs": 0}
        assert bob.load(point, verify=False) == outcome  # bob still hits

        # Once every namespace's ref has aged out the object goes, and
        # the now-dangling refs are cleaned up with it.
        os.utime(obj, (old, old))  # bob's hit re-freshened it above
        os.utime(alice.ref_path(key), (old, old))
        os.utime(bob.ref_path(key), (old, old))
        report = alice.prune(max_age_s=86400)
        assert report == {"removed": 1, "kept": 0, "dangling_refs": 2}
        assert bob.load(point, verify=False) is None

    def test_prune_keeps_fresh_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = spec()
        (outcome,) = SweepRunner(cache=cache).run([point])
        report = cache.prune(max_age_s=86400)
        assert report["removed"] == 0 and report["kept"] == 1
        assert cache.load(point, verify=False) == outcome

    def test_checkpoint_store_stats_and_prune(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        point = spec()
        SweepRunner(checkpoints=store).run([point])
        stats = store.stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0
        path = store.path(store.key(point))
        old = time.time() - 10 * 86400
        os.utime(path, (old, old))
        assert store.prune(max_age_s=86400)["removed"] == 1
        assert store.load(point) is None


class TestCheckpointStore:
    def test_warm_start_reproduces_cold_outcome(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        point = spec()

        cold = SweepRunner(checkpoints=store)
        (first,) = cold.run([point])
        assert cold.stats.captured == 1
        assert cold.stats.warm_started == 0
        assert store.load(point) is not None

        warm = SweepRunner(checkpoints=store)
        (second,) = warm.run([point])
        assert warm.stats.warm_started == 1
        assert warm.stats.captured == 0  # resumed points don't re-capture
        assert second == first

    def test_warm_figure_byte_identical(self, tmp_path):
        """A warm-started sweep emits the byte-identical figure CSV —
        capture fans out over a pool, resume runs serially."""
        reference = tiny_fig2().to_csv()
        store = CheckpointStore(tmp_path / "ckpt")
        capture = SweepRunner(jobs=2, checkpoints=store)
        assert tiny_fig2(runner=capture).to_csv() == reference
        assert capture.stats.captured == 2

        warm = SweepRunner(checkpoints=store)
        assert tiny_fig2(runner=warm).to_csv() == reference
        assert warm.stats.warm_started == 2

    def test_stale_checkpoint_falls_back_to_cold(self, tmp_path):
        """A checkpoint whose embedded spec disagrees is ignored, not
        trusted: the point restarts cold and stays correct."""
        store = CheckpointStore(tmp_path / "ckpt")
        point, other = spec(), spec(instances=2)
        SweepRunner(checkpoints=store).run([other])
        foreign = store.load(other)
        assert foreign is not None
        store.store(point, foreign)  # wrong document under point's key

        (reference,) = SweepRunner().run([point])
        (outcome,) = SweepRunner(checkpoints=store).run([point])
        assert outcome == reference

    def test_corrupt_checkpoint_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        point = spec()
        path = store.path(store.key(point))
        path.parent.mkdir(parents=True)
        path.write_text("not json")
        assert store.load(point) is None

        runner = SweepRunner(checkpoints=store)
        runner.run([point])
        assert runner.stats.warm_started == 0
        assert runner.stats.captured == 1  # replaced the corrupt entry
        assert store.load(point) is not None

    def test_corrupt_checkpoint_is_evicted(self, tmp_path, capsys):
        store = CheckpointStore(tmp_path / "ckpt")
        point = spec()
        path = store.path(store.key(point))
        path.parent.mkdir(parents=True)
        path.write_text("not json")
        assert store.load(point) is None
        assert store.evictions == 1
        assert not path.exists()
        assert "dropped corrupt checkpoint" in capsys.readouterr().err

    def test_wrong_format_checkpoint_is_evicted(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        point = spec()
        path = store.path(store.key(point))
        path.parent.mkdir(parents=True)
        path.write_text('{"format": "something-else"}')
        assert store.load(point) is None
        assert store.evictions == 1
        assert not path.exists()

    def test_missing_checkpoint_is_not_an_eviction(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.load(spec()) is None
        assert store.evictions == 0


class TestProgress:
    def test_reports_cache_state_per_point(self, tmp_path):
        events = []

        def progress(label, done, total):
            events.append((label, done, total))

        tiny_fig2(runner=SweepRunner(cache=ResultCache(tmp_path)),
                  progress=progress)
        assert len(events) == 2
        assert all(total == 2 for _, _, total in events)
        assert not any("[cache]" in label for label, _, _ in events)

        events.clear()
        tiny_fig2(runner=SweepRunner(cache=ResultCache(tmp_path)),
                  progress=progress)
        assert len(events) == 2
        assert all("[cache]" in label for label, _, _ in events)


class TestCsvRoundTrip:
    def test_comma_labels_survive(self):
        figure = tiny_fig2()
        label = figure.series[0].label
        assert "," in label  # "Alpha, Round Robin, 1ms"
        parsed = list(csv.reader(io.StringIO(figure.to_csv())))
        header, *rows = parsed
        expected = figure.to_rows()
        assert len(rows) == len(expected)
        for parsed_row, row in zip(rows, expected):
            record = dict(zip(header, parsed_row))
            assert record["series"] == row["series"]
            assert int(record["x"]) == row["x"]
            assert int(record["y"]) == row["y"]
            for key, value in row.items():
                assert record[key] == str(value)
