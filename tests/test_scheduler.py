"""Round-robin process scheduler."""

import pytest

from repro.errors import KernelError
from repro.kernel.process import ProcessState
from repro.kernel.scheduler import RoundRobinScheduler


class FakeProcess:
    def __init__(self, pid):
        self.pid = pid
        self.state = ProcessState.READY

    @property
    def alive(self):
        return self.state in (ProcessState.READY, ProcessState.RUNNING)


class TestScheduler:
    def test_empty_pick(self):
        assert RoundRobinScheduler().pick() is None

    def test_round_robin_order(self):
        scheduler = RoundRobinScheduler()
        procs = [FakeProcess(i) for i in range(3)]
        for proc in procs:
            scheduler.add(proc)
        order = [scheduler.pick().pid for _ in range(6)]
        assert order == [0, 1, 2, 0, 1, 2]

    def test_pick_marks_running(self):
        scheduler = RoundRobinScheduler()
        proc = FakeProcess(1)
        scheduler.add(proc)
        scheduler.pick()
        assert proc.state is ProcessState.RUNNING

    def test_preempt_marks_ready(self):
        scheduler = RoundRobinScheduler()
        proc = FakeProcess(1)
        scheduler.add(proc)
        scheduler.pick()
        scheduler.preempt(proc)
        assert proc.state is ProcessState.READY

    def test_dead_processes_dropped_lazily(self):
        scheduler = RoundRobinScheduler()
        alive, dead = FakeProcess(1), FakeProcess(2)
        scheduler.add(alive)
        scheduler.add(dead)
        dead.state = ProcessState.EXITED
        assert scheduler.pick().pid == 1
        assert scheduler.pick().pid == 1  # dead one skipped and dropped
        assert len(scheduler) == 1

    def test_all_dead(self):
        scheduler = RoundRobinScheduler()
        proc = FakeProcess(1)
        scheduler.add(proc)
        proc.state = ProcessState.KILLED
        assert scheduler.pick() is None

    def test_add_dead_rejected(self):
        scheduler = RoundRobinScheduler()
        proc = FakeProcess(1)
        proc.state = ProcessState.EXITED
        with pytest.raises(KernelError):
            scheduler.add(proc)

    def test_remove(self):
        scheduler = RoundRobinScheduler()
        proc = FakeProcess(1)
        scheduler.add(proc)
        scheduler.remove(proc)
        assert scheduler.pick() is None
        with pytest.raises(KernelError):
            scheduler.remove(proc)

    def test_switch_counting(self):
        scheduler = RoundRobinScheduler()
        a, b = FakeProcess(1), FakeProcess(2)
        scheduler.add(a)
        scheduler.pick()
        scheduler.pick()  # same process again: no switch
        assert scheduler.switches == 0
        scheduler.add(b)
        scheduler.pick()  # a again (head of queue)
        scheduler.pick()  # b: first real switch
        assert scheduler.switches == 1

    def test_runnable_count(self):
        scheduler = RoundRobinScheduler()
        a, b = FakeProcess(1), FakeProcess(2)
        scheduler.add(a)
        scheduler.add(b)
        b.state = ProcessState.EXITED
        assert scheduler.runnable == 1
