"""The simulation daemon: protocol, tenants, preemption, migration.

A real daemon runs on a background thread with a real unix socket in
``tmp_path``; clients connect over the wire.  The load-bearing claims:
outcomes that cross the protocol are bit-identical to in-process runs,
concurrent tenants share cache hits, and a job preempted mid-run on one
worker resumes bit-identically on another.
"""

import argparse
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.sim.client import ServeClient
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.jobs import JobState, Scheduler
from repro.sim.runner import ResultCache, SweepRunner
from repro.sim.serve import ServeDaemon, daemon_available

SCALE = 1 / 8000


def spec(**overrides) -> ExperimentSpec:
    values = dict(workload="alpha", instances=1, quantum_ms=1.0, scale=SCALE)
    values.update(overrides)
    return ExperimentSpec(**values)


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on a background thread; yields (daemon, socket)."""
    cache = ResultCache(tmp_path / "cache")
    scheduler = Scheduler(workers=2, cache=cache, slice_quanta=512)
    server = ServeDaemon(scheduler, tmp_path / "serve.sock")
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.started.wait(10.0)
    try:
        yield server
    finally:
        server.stop()
        thread.join(timeout=10.0)
        scheduler.shutdown(wait=True, cancel_pending=True)


class TestProtocol:
    def test_no_daemon_no_socket(self, tmp_path):
        assert not daemon_available(tmp_path / "nothing.sock")
        with pytest.raises(ExperimentError, match="no daemon"):
            ServeClient(tmp_path / "nothing.sock")

    def test_ping(self, daemon):
        assert daemon_available(daemon.socket_path)
        with ServeClient(daemon.socket_path) as client:
            reply = client.ping()
            assert reply["pong"]
            assert reply["workers"] == 2
            assert reply["slice_quanta"] == 512

    def test_unknown_op_is_an_error_not_a_hangup(self, daemon):
        with ServeClient(daemon.socket_path) as client:
            with pytest.raises(ExperimentError, match="unknown op"):
                client._request({"op": "frobnicate"})
            assert client.ping()["pong"]  # connection survived

    def test_stats_op(self, daemon):
        with ServeClient(daemon.socket_path) as client:
            client.submit(spec()).result(timeout=120)
            reply = client.stats()
            assert reply["stats"]["submitted"] == 1
            assert reply["stats"]["executed"] == 1

    def test_stale_socket_is_no_daemon(self, tmp_path):
        """A socket file with nobody listening (the daemon was killed
        before it could unlink) reads as "no daemon" — and the dead
        file is removed so the next binder starts clean."""
        stale = tmp_path / "stale.sock"
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.bind(str(stale))
        # closing without listen/accept leaves the path behind, exactly
        # like a SIGKILLed daemon
        assert stale.exists()
        assert not daemon_available(stale)
        assert not stale.exists()

    def test_stale_socket_falls_back_in_process(self, tmp_path):
        """Auto-routing must not hand a dead socket to ServeClient: the
        sweep runs on the in-process pool instead of crashing with
        ConnectionRefusedError."""
        from repro.sim.cli import _make_runner

        stale = tmp_path / "stale.sock"
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.bind(str(stale))
        args = argparse.Namespace(
            no_cache=True, warm_start=False, no_daemon=False,
            socket=stale, jobs=1, tenant="alice", priority=0,
        )
        runner = _make_runner(args)
        assert runner.scheduler is None  # in-process pool, not a client
        (outcome,) = runner.run([spec()])
        assert outcome == run_experiment(spec(), verify=False)


class TestRemoteExecution:
    def test_outcome_bit_identical_over_the_wire(self, daemon):
        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        with ServeClient(daemon.socket_path) as client:
            job = client.submit(point)
            assert job.result(timeout=120) == reference
            assert job.state is JobState.DONE
            assert job.preemptions > 0  # the daemon slices everything

    def test_streamed_lifecycle_events(self, daemon):
        events = []
        with ServeClient(daemon.socket_path) as client:
            job = client.submit(spec(instances=2))
            job.add_listener(
                lambda job, kind, message: events.append(kind)
            )
            job.result(timeout=120)
        assert "done" in events
        assert "preempted" in events

    def test_cross_tenant_cache_hit(self, daemon):
        point = spec(instances=2)
        with ServeClient(daemon.socket_path) as alice, \
                ServeClient(daemon.socket_path) as bob:
            first = alice.submit(point, tenant="alice")
            outcome = first.result(timeout=120)
            second = bob.submit(point, tenant="bob")
            assert second.cached  # visible straight from the reply
            assert second.result(timeout=120) == outcome
        cache = daemon.scheduler.cache
        assert sorted(cache.namespaces()) == ["alice", "bob"]

    def test_sweeprunner_rides_the_daemon(self, daemon):
        points = [spec(instances=n) for n in (1, 2)]
        reference = [run_experiment(p, verify=False) for p in points]
        with ServeClient(daemon.socket_path) as client:
            runner = SweepRunner(scheduler=client, tenant="sweepy")
            outcomes = runner.run(points)
        assert outcomes == reference
        assert runner.stats.executed == 2
        assert runner.stats.preemptions > 0

    def test_concurrent_tenants_share_overlapping_work(self, daemon):
        """Two clients sweep overlapping point sets at the same time:
        every point executes at most once globally (cache hit or
        coalesce on the overlap) and both get identical outcomes."""
        overlap = [spec(instances=n) for n in (1, 2)]
        results = {}

        def sweep(name):
            with ServeClient(daemon.socket_path) as client:
                runner = SweepRunner(scheduler=client, tenant=name)
                results[name] = (runner.run(list(overlap)), runner.stats)

        threads = [
            threading.Thread(target=sweep, args=(name,))
            for name in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        alice, astats = results["alice"]
        bob, bstats = results["bob"]
        assert alice == bob
        stats = daemon.scheduler.stats
        assert stats.executed == len(overlap)  # no duplicate work
        shared = (astats.cache_hits + astats.coalesced
                  + bstats.cache_hits + bstats.coalesced)
        assert shared == len(overlap)


class TestSignalShutdown:
    def test_sigint_stops_a_backgrounded_daemon(self, tmp_path):
        """``repro serve &`` under a non-interactive shell inherits
        SIGINT as SIG_IGN, so KeyboardInterrupt alone never fires; the
        daemon installs its own handler and must still shut down
        gracefully on ``kill -INT`` (regression: the CI smoke's
        ``wait $SERVE_PID`` hung forever)."""
        sock = tmp_path / "serve.sock"
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path / "cache"))
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else [])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "1",
             "--socket", str(sock)],
            stderr=subprocess.PIPE,
            env=env,
            preexec_fn=lambda: signal.signal(
                signal.SIGINT, signal.SIG_IGN
            ),
        )
        try:
            deadline = time.monotonic() + 30.0
            while not daemon_available(sock):
                assert time.monotonic() < deadline, "daemon never came up"
                assert proc.poll() is None, proc.stderr.read()
                time.sleep(0.1)
            proc.send_signal(signal.SIGINT)
            stderr = proc.communicate(timeout=30)[1]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0, stderr.decode()
        assert b"serve:" in stderr  # the shutdown stats line printed
        assert not sock.exists()  # socket unlinked on the way out


class TestMigration:
    def test_preempt_on_one_worker_resume_on_another(self, tmp_path):
        """The headline determinism claim, end to end through the
        daemon: a job preempted mid-quantum on worker A resumes on
        worker B (pool rotation guarantees distinct processes) and the
        outcome is bit-identical to an uninterrupted local run."""
        point = spec(instances=2)
        reference = run_experiment(point, verify=False)
        scheduler = Scheduler(
            workers=1, slice_quanta=1024, rotate_workers=True
        )
        server = ServeDaemon(scheduler, tmp_path / "mig.sock")
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        assert server.started.wait(10.0)
        try:
            with ServeClient(server.socket_path) as client:
                job = client.submit(point)
                outcome = job.result(timeout=120)
            assert outcome == reference
            assert job.preemptions >= 1
            assert len(set(job.worker_pids)) >= 2  # it migrated
        finally:
            server.stop()
            thread.join(timeout=10.0)
            scheduler.shutdown(wait=True, cancel_pending=True)
