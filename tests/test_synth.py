"""Profiler-driven custom-instruction synthesis (mining → adoption)."""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.hashmix import build_hash_program, hash_mix
from repro.config import MachineConfig
from repro.errors import SynthesisError
from repro.fabric.validate import SecurityPolicy, validate_bitstream
from repro.machine import Machine
from repro.sim.experiment import (
    ExperimentSpec,
    outcome_to_dict,
    run_experiment,
)
from repro.synth.adopt import synthesise
from repro.synth.mine import mine_candidates
from repro.synth.plan import SynthesisPlan, plan_from_dict, plan_to_dict

CONFIG = MachineConfig()
PLAN = SynthesisPlan()

#: Small but fast experiment points (hash items scale with this).
SCALE = 1e-4


def _hash_program(items=64):
    return build_hash_program(items)


class TestPlan:
    def test_defaults_valid(self):
        assert PLAN.max_circuits_per_process >= 1

    def test_rejects_bad_values(self):
        with pytest.raises(SynthesisError):
            SynthesisPlan(min_executions=0)
        with pytest.raises(SynthesisError):
            SynthesisPlan(min_window=0)
        with pytest.raises(SynthesisError):
            SynthesisPlan(max_window=2, min_window=4)

    def test_dict_roundtrip(self):
        plan = SynthesisPlan(min_executions=5, trigger_instructions=123)
        assert plan_from_dict(plan_to_dict(plan)) == plan


class TestMining:
    def test_hash_window_mined(self):
        """The designed six-instruction mixing window is found exactly."""
        [cand] = mine_candidates(_hash_program(), PLAN, CONFIG)
        assert (cand.start, cand.end) == (5, 11)
        assert cand.inputs == (0, 1)
        assert cand.out_reg == 0
        assert cand.count == 64
        assert cand.hw_cycles < cand.sw_cycles
        assert cand.clbs <= CONFIG.pfu_clbs

    def test_mining_is_deterministic(self):
        program = _hash_program()
        assert (
            mine_candidates(program, PLAN, CONFIG)
            == mine_candidates(program, PLAN, CONFIG)
        )

    def test_cold_window_not_mined(self):
        """Below the execution threshold nothing is worth a bitstream."""
        plan = SynthesisPlan(min_executions=1000)
        assert mine_candidates(_hash_program(), plan, CONFIG) == []


class TestAdoption:
    def test_synthesised_circuit_matches_software(self):
        """The composed element graph computes exactly what the mined
        window's instructions compute."""
        (adoption,), _ = synthesise(
            _hash_program(), replace(CONFIG, synthesis=PLAN)
        )
        compute = adoption.spec.behaviour.compute
        # input_a carries r0 (the accumulator), input_b carries r1 (the
        # loaded word); the window is one hash_mix round.
        assert compute(0, 0, []) == hash_mix(0, 0)
        assert compute(7, 0xDEADBEEF, []) == hash_mix(0xDEADBEEF, 7)

    @given(
        acc=st.integers(min_value=0, max_value=0xFFFFFFFF),
        value=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    @settings(max_examples=40)
    def test_synthesised_circuit_matches_software_exhaustively(
        self, acc, value
    ):
        compute = _ADOPTION.spec.behaviour.compute
        assert compute(acc, value, []) == hash_mix(value, acc)

    def test_synthesised_bitstream_validates(self):
        """Adopted circuits pass the same OS security policy the CIS
        applies to hand-written registrations."""
        config = replace(CONFIG, synthesis=PLAN)
        (adoption,), _ = synthesise(_hash_program(), config)
        instance = adoption.spec.instantiate(pid=1, config=config)
        policy = SecurityPolicy(max_clbs=config.pfu_clbs, max_state_words=64)
        assert validate_bitstream(instance.bitstream, policy).ok

    def test_rewrite_preserves_program_length_prefix(self):
        """The covered window is replaced in place; every instruction
        index before the appended soft routine is preserved, so branch
        targets and the PC need no relocation."""
        program = _hash_program()
        (adoption,), rewritten = synthesise(
            program, replace(CONFIG, synthesis=PLAN)
        )
        old = program.image.instructions
        new = rewritten.image.instructions
        assert len(new) > len(old)
        for index in range(len(old)):
            if adoption.start <= index < adoption.end:
                continue
            assert new[index] == old[index], index

    def test_synthesise_requires_a_plan(self):
        with pytest.raises(SynthesisError):
            synthesise(_hash_program(), CONFIG)


# One shared adoption for the hypothesis property above (synthesise is
# memoised per (program, config), but hypothesis re-runs the function
# body per example).
_ADOPTION = synthesise(_hash_program(), replace(CONFIG, synthesis=PLAN))[0][0]


def _spec(instances=2, synthesis=PLAN, **kwargs):
    return ExperimentSpec(
        workload="hash",
        instances=instances,
        quantum_ms=1.0,
        scale=SCALE,
        synthesis=synthesis,
        **kwargs,
    )


class TestRuntimeAdoption:
    def test_synthesis_beats_baseline(self):
        off = run_experiment(_spec(synthesis=None), verify=True)
        on = run_experiment(_spec(), verify=True)
        assert on.cis["registrations"] >= 1
        assert on.makespan < off.makespan
        assert on.verified and off.verified

    def test_disabled_by_default(self):
        spec = ExperimentSpec(workload="hash", instances=1, scale=SCALE)
        outcome = run_experiment(spec)
        assert spec.synthesis is None
        assert outcome.cis["registrations"] == 0

    def test_outcome_identical_across_tiers(self, monkeypatch):
        outcomes = []
        for tier in ("step", "closure", "block", "jit"):
            monkeypatch.setenv("REPRO_EXEC_TIER", tier)
            outcomes.append(
                outcome_to_dict(run_experiment(_spec(), verify=True))
            )
        assert all(payload == outcomes[0] for payload in outcomes[1:])

    def test_checkpoint_resume_bit_identical(self):
        """Resuming across the adoption point (or before it) replays the
        same synthesis decision and converges on the same bytes."""
        spec = _spec()
        straight = Machine.from_spec(spec)
        straight.spawn_instances()
        straight.run()
        want = json.dumps(
            outcome_to_dict(straight.outcome(verify=True)), sort_keys=True
        )
        for quanta in (1, 20, 500):
            machine = Machine.from_spec(spec)
            machine.spawn_instances()
            machine.run_quanta(quanta)
            resumed = Machine.resume(
                json.loads(json.dumps(machine.checkpoint()))
            )
            resumed.run()
            got = json.dumps(
                outcome_to_dict(resumed.outcome(verify=True)), sort_keys=True
            )
            assert got == want, quanta

    def test_adoption_survives_checkpoint_registration_record(self):
        """The checkpoint carries the synth descriptor, and the resumed
        kernel rebuilds the same rewritten program from it."""
        spec = _spec(instances=1)
        machine = Machine.from_spec(spec)
        machine.spawn_instances()
        # Quanta are tiny at this scale (~10 cycles); run well past the
        # retired-instruction trigger so adoption has happened.
        machine.run_quanta(600)
        assert not machine.finished
        snap = machine.checkpoint()
        registrations = [
            entry
            for proc in snap["kernel"]["processes"].values()
            for entry in proc["registrations"]
        ]
        assert any(entry.get("synth") for entry in registrations)


class TestSpecKeyDiscipline:
    def test_serialised_spec_omits_disabled_synthesis(self):
        """synthesis=None must not appear in the serialised spec, so
        every pre-PR cache entry and checkpoint stays valid
        byte-for-byte."""
        from repro.machine import _spec_to_dict

        spec = ExperimentSpec(workload="alpha", instances=2, scale=SCALE)
        assert "synthesis" not in _spec_to_dict(spec)
        assert "synthesis" in _spec_to_dict(replace(spec, synthesis=PLAN))

    def test_serialised_spec_roundtrips_plan(self):
        from repro.machine import _spec_from_dict, _spec_to_dict

        spec = _spec(synthesis=SynthesisPlan(min_executions=5))
        assert _spec_from_dict(_spec_to_dict(spec)) == spec

    def test_spec_key_changes_when_enabled(self):
        base = ExperimentSpec(workload="hash", instances=2, scale=SCALE)
        enabled = replace(base, synthesis=PLAN)
        assert base.spec_key() != enabled.spec_key()

    def test_plan_changes_key(self):
        one = replace(_spec(), synthesis=SynthesisPlan(min_executions=16))
        two = replace(_spec(), synthesis=SynthesisPlan(min_executions=17))
        assert one.spec_key() != two.spec_key()
