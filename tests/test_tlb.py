"""The (PID, CID)-keyed dispatch TLB of §4.2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tlb import DispatchTLB, IDTuple


def key(pid: int, cid: int) -> IDTuple:
    return IDTuple(pid=pid, cid=cid)


class TestBasics:
    def test_miss(self):
        tlb = DispatchTLB(entries=4)
        assert tlb.lookup(key(1, 1)) is None

    def test_insert_lookup(self):
        tlb = DispatchTLB(entries=4)
        tlb.insert(key(1, 1), 3)
        assert tlb.lookup(key(1, 1)) == 3

    def test_pid_distinguishes_tuples(self):
        """Same CID under different PIDs resolves independently — the
        globally unique ID tuple of §4.2."""
        tlb = DispatchTLB(entries=4)
        tlb.insert(key(1, 7), 0)
        tlb.insert(key(2, 7), 1)
        assert tlb.lookup(key(1, 7)) == 0
        assert tlb.lookup(key(2, 7)) == 1

    def test_many_tuples_one_value(self):
        """Multiple ID tuples can map to one circuit (sharing, §4.2)."""
        tlb = DispatchTLB(entries=4)
        tlb.insert(key(1, 1), 2)
        tlb.insert(key(2, 5), 2)
        assert tlb.keys_for_value(2) == [key(1, 1), key(2, 5)] or set(
            tlb.keys_for_value(2)
        ) == {key(1, 1), key(2, 5)}

    def test_reinsert_updates_value(self):
        tlb = DispatchTLB(entries=4)
        tlb.insert(key(1, 1), 0)
        evicted = tlb.insert(key(1, 1), 3)
        assert evicted is None
        assert tlb.lookup(key(1, 1)) == 3
        assert tlb.occupied == 1

    def test_remove(self):
        tlb = DispatchTLB(entries=4)
        tlb.insert(key(1, 1), 0)
        assert tlb.remove(key(1, 1))
        assert tlb.lookup(key(1, 1)) is None
        assert not tlb.remove(key(1, 1))


class TestCapacity:
    def test_fifo_eviction_when_full(self):
        tlb = DispatchTLB(entries=2)
        tlb.insert(key(1, 1), 0)
        tlb.insert(key(1, 2), 1)
        evicted = tlb.insert(key(1, 3), 2)
        assert evicted == key(1, 1)
        assert tlb.lookup(key(1, 1)) is None
        assert tlb.lookup(key(1, 3)) == 2

    def test_loaded_circuit_can_lose_its_mapping(self):
        """§4.2: more mappings may be needed than fit, so a loaded
        circuit may fault purely on its mapping."""
        tlb = DispatchTLB(entries=2)
        tlb.insert(key(1, 1), 0)  # circuit in PFU 0
        tlb.insert(key(2, 1), 1)
        tlb.insert(key(3, 1), 2)  # pushes out (1,1)
        assert tlb.lookup(key(1, 1)) is None  # mapping fault, PFU 0 intact

    def test_eviction_counts(self):
        tlb = DispatchTLB(entries=1)
        tlb.insert(key(1, 1), 0)
        tlb.insert(key(1, 2), 0)
        assert tlb.evictions == 1


class TestBulkInvalidation:
    def test_remove_pid(self):
        tlb = DispatchTLB(entries=8)
        tlb.insert(key(1, 1), 0)
        tlb.insert(key(1, 2), 1)
        tlb.insert(key(2, 1), 2)
        assert tlb.remove_pid(1) == 2
        assert tlb.lookup(key(2, 1)) == 2

    def test_remove_value(self):
        """Evicting a circuit from PFU n drops every tuple naming it."""
        tlb = DispatchTLB(entries=8)
        tlb.insert(key(1, 1), 3)
        tlb.insert(key(2, 9), 3)
        tlb.insert(key(2, 1), 0)
        assert tlb.remove_value(3) == 2
        assert tlb.lookup(key(2, 1)) == 0

    def test_flush(self):
        tlb = DispatchTLB(entries=4)
        tlb.insert(key(1, 1), 0)
        tlb.insert(key(2, 2), 1)
        assert tlb.flush() == 2
        assert tlb.occupied == 0


class TestStatistics:
    def test_hit_rate(self):
        tlb = DispatchTLB(entries=4)
        tlb.insert(key(1, 1), 0)
        tlb.lookup(key(1, 1))
        tlb.lookup(key(9, 9))
        assert tlb.hits == 1
        assert tlb.lookups == 2
        assert tlb.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert DispatchTLB(entries=4).hit_rate == 0.0


@given(
    inserts=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),   # pid
            st.integers(min_value=0, max_value=5),   # cid
            st.integers(min_value=0, max_value=3),   # value
        ),
        max_size=30,
    )
)
@settings(max_examples=60)
def test_contents_never_exceed_capacity_and_are_consistent(inserts):
    tlb = DispatchTLB(entries=4)
    for pid, cid, value in inserts:
        tlb.insert(key(pid, cid), value)
        contents = tlb.contents()
        assert len(contents) <= 4
        for k, v in contents.items():
            assert tlb.lookup(k) == v
