"""The machine event bus: counter views, sinks, replay, zero-cost path."""

import json
import tracemalloc

from conftest import adder_spec
from repro.cpu.program import Program
from repro.kernel.porsche import Porsche
from repro.trace import (
    CounterSink,
    JsonlSink,
    RingBufferSink,
    TimelineAggregator,
    TraceBus,
)
from repro.trace import events as ev
from repro.trace import bus as bus_module


def program(source: str, circuits=(), name="p") -> Program:
    return Program.from_source(name, source, circuit_table=list(circuits))


#: Registers CID 1, runs the custom instruction a few times, exits 42.
REGISTER_AND_CDP = """
main:
    MOV r0, #1          ; CID
    MOV r1, #0          ; table index
    MOV r2, #0          ; no software alternative
    SWI #1
    MOV r4, #3          ; iterations
    MOV r0, #11
    MOV r1, #31
    MCR f0, r0
    MCR f1, r1
loop:
    CDP #1, f2, f0, f1
    SUB r4, r4, #1
    CMP r4, #0
    BNE loop
    MRC r0, f2
    SWI #0
"""


def run_mixed_workload(config, sinks=()):
    """A run touching every event type family: quanta, context switches,
    syscalls, faults with evictions (1 PFU, 2 circuits), a kill, exits."""
    kernel = Porsche(config.derive(pfu_count=1, quantum_ms=0.05))
    for sink in sinks:
        kernel.trace.attach(sink)
    processes = [
        kernel.spawn(program(REGISTER_AND_CDP, circuits=[adder_spec("c0")])),
        kernel.spawn(
            program(REGISTER_AND_CDP, circuits=[adder_spec("c1")], name="q")
        ),
        kernel.spawn(program("CDP #5, f0, f0, f0\nHALT", name="bad")),
        kernel.spawn(program("MOV r0, #7\nSWI #0", name="quick")),
    ]
    kernel.run()
    return kernel, processes


class TestCounterViews:
    def test_stats_objects_are_sink_views(self, kernel):
        sink = kernel.trace.counters
        assert kernel.stats is sink.kernel
        assert kernel.cis.stats is sink.cis
        process = kernel.spawn(program("MOV r0, #0\nSWI #0"))
        assert process.stats is sink.process(process.pid)

    def test_mixed_run_populates_legacy_counters(self, config):
        kernel, processes = run_mixed_workload(config)
        assert kernel.stats.quanta > 0
        assert kernel.stats.syscalls >= 4
        assert kernel.stats.kills == 1
        assert kernel.stats.total_cycles == kernel.clock
        assert kernel.cis.stats.loads >= 2
        assert kernel.cis.stats.evictions >= 1
        assert processes[0].stats.load_faults >= 1


class TestEventStream:
    def test_event_cycles_monotonic(self, config):
        ring = RingBufferSink(capacity=1_000_000)
        run_mixed_workload(config, sinks=[ring])
        events = ring.events
        assert len(events) == ring.seen  # nothing dropped
        assert events, "mixed workload must produce events"
        for before, after in zip(events, events[1:]):
            assert after.cycle >= before.cycle

    def test_replay_reproduces_live_counters(self, config):
        """Replaying a recorded stream through a fresh CounterSink must
        reconstruct every legacy statistic exactly."""
        ring = RingBufferSink(capacity=1_000_000)
        kernel, processes = run_mixed_workload(config, sinks=[ring])
        live = kernel.trace.counters

        replayed = CounterSink()
        for event in ring:
            replayed.consume(event)

        assert replayed.kernel == live.kernel
        assert replayed.cis == live.cis
        assert replayed.dispatch == live.dispatch
        assert set(replayed.processes) == set(live.processes)
        for pid, stats in live.processes.items():
            assert replayed.processes[pid] == stats

    def test_events_know_their_kind(self, config):
        ring = RingBufferSink(capacity=1_000_000)
        run_mixed_workload(config, sinks=[ring])
        kinds = {event.kind for event in ring}
        assert {
            "quantum_start", "context_switch", "syscall", "dispatch",
            "fault", "circuit_load", "circuit_evict", "cpu_burst",
            "kernel_charge", "process_exit",
        } <= kinds


class TestDisabledBusCost:
    def _traced_bytes(self, bus: TraceBus, iterations: int = 300) -> int:
        """Bytes allocated inside the bus/event modules during emits."""
        filters = [
            tracemalloc.Filter(True, bus_module.__file__),
            tracemalloc.Filter(True, ev.__file__),
        ]
        tracemalloc.start()
        try:
            for __ in range(iterations):
                bus.cpu_burst(1, 5, 3)
                bus.kernel_charge(1, 2)
                bus.dispatch_resolved(1, 1, "hit")
                bus.quantum_start(1)
            snapshot = tracemalloc.take_snapshot().filter_traces(filters)
        finally:
            tracemalloc.stop()
        return sum(stat.size for stat in snapshot.statistics("filename"))

    def test_no_event_sink_means_no_event_allocations(self):
        bus = TraceBus()
        assert not bus.recording
        assert self._traced_bytes(bus) == 0

    def test_attached_sink_is_the_positive_control(self):
        """The same measurement must see allocations once a sink is on —
        proving the zero reading above is not a measurement artefact."""
        bus = TraceBus()
        bus.attach(RingBufferSink(capacity=16))
        assert bus.recording
        assert self._traced_bytes(bus) > 0


class TestSinks:
    def test_ring_buffer_bounds_and_drop_count(self):
        ring = RingBufferSink(capacity=4)
        for cycle in range(10):
            ring.on_event(ev.QuantumStart(cycle, 1))
        assert len(ring) == 4
        assert ring.seen == 10
        assert ring.dropped == 6
        assert [event.cycle for event in ring] == [6, 7, 8, 9]
        ring.clear()
        assert len(ring) == 0 and ring.seen == 0

    def test_jsonl_sink_streams_parseable_lines(self, config, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            kernel, __ = run_mixed_workload(config, sinks=[sink])
        lines = path.read_text().splitlines()
        assert len(lines) == sink.written > 0
        records = [json.loads(line) for line in lines]
        assert all("kind" in record and "cycle" in record for record in records)
        assert records[-1]["kind"] == "kernel_charge"
        assert records[-1]["source"] == "exit"


class TestTimeline:
    def test_attribution_matches_process_stats(self, config):
        timeline = TimelineAggregator()
        kernel, processes = run_mixed_workload(config, sinks=[timeline])
        timeline.close(kernel.clock)
        for process in processes:
            attribution = timeline.processes[process.pid]
            assert attribution.cpu_cycles == process.stats.cpu_cycles
            assert attribution.kernel_cycles == process.stats.kernel_cycles
            assert attribution.quanta == process.stats.quanta
            assert attribution.exit_cycle is not None
        assert timeline.processes[3].killed

    def test_occupancy_segments_close_and_nest_in_run(self, config):
        timeline = TimelineAggregator()
        kernel, __ = run_mixed_workload(config, sinks=[timeline])
        timeline.close(kernel.clock)
        segments = timeline.segments
        assert segments, "one-PFU contention must produce residency segments"
        for segment in segments:
            assert segment.end is not None
            assert 0 <= segment.start <= segment.end <= kernel.clock
        # One PFU: segments on it must not overlap.
        ordered = sorted(segments, key=lambda s: s.start)
        for before, after in zip(ordered, ordered[1:]):
            assert before.end <= after.start
        assert 0.0 < timeline.utilisation(0, kernel.clock) <= 1.0


class TestFastPathRebinding:
    """With no event sink, the hot emitters are the counter sink's own
    bound methods; attaching a sink swaps in the recording variants."""

    def test_quiet_bus_binds_hot_emitters_to_counter_sink(self):
        bus = TraceBus()
        for name, callback in bus_module._HOT_EMITTERS.items():
            emitter = getattr(bus, name)
            assert emitter.__self__ is bus.counters, name
            assert emitter.__func__.__name__ == callback

    def test_attach_and_detach_swap_the_bindings(self):
        bus = TraceBus()
        sink = bus.attach(RingBufferSink(capacity=4))
        for name in bus_module._HOT_EMITTERS:
            assert getattr(bus, name).__self__ is bus, name
        bus.detach(sink)
        for name in bus_module._HOT_EMITTERS:
            assert getattr(bus, name).__self__ is bus.counters, name

    def test_counters_identical_with_and_without_sink(self, config):
        quiet, __ = run_mixed_workload(config)
        loud, __ = run_mixed_workload(
            config, sinks=[RingBufferSink(capacity=1_000_000)]
        )
        assert quiet.trace.counters.kernel == loud.trace.counters.kernel
        assert quiet.trace.counters.cis == loud.trace.counters.cis
        assert quiet.trace.counters.dispatch == loud.trace.counters.dispatch
        assert quiet.trace.counters.processes == loud.trace.counters.processes
