"""Equivalence of the closure-compiled fast path and the reference
interpreter, instruction by instruction and over whole programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import adder_spec
from repro.config import MachineConfig
from repro.core.coprocessor import ProteusCoprocessor
from repro.core.tlb import IDTuple
from repro.cpu.assembler import assemble
from repro.cpu.core import CPU, CPUState
from repro.cpu.isa import code_address
from repro.cpu.memory import Memory

CONFIG = MachineConfig(cycles_per_ms=1000)


def make_cpu(source: str, with_circuit: bool = False, pid: int = 1):
    program = assemble(source)
    memory = Memory(size=16 * 1024)
    memory.write_block(program.data_base, program.data)
    state = CPUState(memory=memory)
    state.pc = code_address(program.entry_index)
    coprocessor = ProteusCoprocessor(config=CONFIG)
    if with_circuit:
        instance = adder_spec(latency=4).instantiate(pid, CONFIG)
        coprocessor.load_circuit(0, instance)
        coprocessor.dispatch.map_hardware(IDTuple(pid, 1), 0)
    return CPU(
        config=CONFIG,
        program=program.instructions,
        state=state,
        coprocessor=coprocessor,
        pid=pid,
    )


def run_both(source: str, budgets: list[int], with_circuit: bool = False):
    """Run the same program on both paths in identical bursts."""
    fast = make_cpu(source, with_circuit)
    slow = make_cpu(source, with_circuit)
    fast_log, slow_log = [], []
    for budget in budgets:
        rf = fast.run(budget)
        rs = slow.run_interpreted(budget)
        fast_log.append((rf.cycles, type(rf.event).__name__))
        slow_log.append((rs.cycles, type(rs.event).__name__))
    return fast, slow, fast_log, slow_log


def assert_same_state(fast: CPU, slow: CPU):
    assert fast.state.regs == slow.state.regs
    assert fast.state.pc == slow.state.pc
    assert fast.state.halted == slow.state.halted
    assert (
        fast.state.memory.read_block(0x1000, 256)
        == slow.state.memory.read_block(0x1000, 256)
    )
    flags_f, flags_s = fast.state.flags, slow.state.flags
    assert (flags_f.n, flags_f.z, flags_f.c, flags_f.v) == (
        flags_s.n, flags_s.z, flags_s.c, flags_s.v,
    )


FIBONACCI = """
.data
out: .space 64
.text
main:
    MOV r0, #0
    MOV r1, #1
    MOV r2, #out
    MOV r3, #12
loop:
    STR r0, [r2], #4
    ADD r4, r0, r1
    MOV r0, r1
    MOV r1, r4
    SUB r3, r3, #1
    CMP r3, #0
    BNE loop
    MOV r0, #0
    HALT
"""

MIXED = """
.data
buf: .word 5, -3, 100, 0x7FFF
.text
main:
    MOV r4, #buf
    LDR r0, [r4], #4
    LDR r1, [r4], #4
    ADD r2, r0, r1
    MUL r3, r2, r0
    LSR r5, r3, #1
    ASR r6, r1, #2
    ROR r7, r3, #5
    CMP r0, r1
    BGT big
    MOV r8, #0
    B done
big:
    MOV r8, #1
done:
    TST r8, #1
    CMN r0, r1
    STRB r8, [r4]
    LDRB r9, [r4]
    MOV r0, #0
    HALT
"""

CDP_PROGRAM = """
main:
    MOV r0, #1000
    MOV r1, #2345
    MCR f0, r0
    MCR f1, r1
    CDP #1, f2, f0, f1
    MRC r2, f2
    CDP #1, f3, f1, f1
    MRC r3, f3
    MOV r0, #0
    HALT
"""


class TestProgramEquivalence:
    @pytest.mark.parametrize("source", [FIBONACCI, MIXED], ids=["fib", "mixed"])
    def test_single_burst(self, source):
        fast, slow, flog, slog = run_both(source, [1 << 20])
        assert flog == slog
        assert_same_state(fast, slow)

    @pytest.mark.parametrize("budget", [1, 2, 3, 7, 13])
    def test_tiny_bursts(self, budget):
        fast, slow, flog, slog = run_both(FIBONACCI, [budget] * 200)
        assert flog == slog
        assert_same_state(fast, slow)

    def test_cdp_with_interruptions(self):
        """Quantum boundaries land mid-CDP; both paths must agree."""
        for budget in (2, 3, 5, 100):
            fast, slow, flog, slog = run_both(
                CDP_PROGRAM, [budget] * 50, with_circuit=True
            )
            assert flog == slog, budget
            assert_same_state(fast, slow)

    def test_fault_equivalence(self):
        source = "CDP #9, f0, f0, f0\nMOV r0, #0\nHALT"
        fast, slow, flog, slog = run_both(source, [100])
        assert flog == slog
        assert flog[0][1] == "CustomInstructionFault"
        assert_same_state(fast, slow)

    def test_memory_fault_equivalence(self):
        source = "MOV r0, #0\nLDR r1, [r0]\nHALT"
        fast = make_cpu(source)
        slow = make_cpu(source)
        from repro.errors import MemoryFault

        with pytest.raises(MemoryFault):
            fast.run(100)
        with pytest.raises(MemoryFault):
            slow.run_interpreted(100)


class TestCompileTimeChecks:
    def _cpu(self, instructions):
        memory = Memory(size=16 * 1024)
        state = CPUState(memory=memory)
        state.pc = code_address(0)
        return CPU(
            config=CONFIG,
            program=instructions,
            state=state,
            coprocessor=ProteusCoprocessor(config=CONFIG),
            pid=1,
        )

    def test_branch_to_one_past_end_is_rejected(self):
        """Regression: a branch to ``length`` (one past the last
        instruction) used to compile and then die later with a generic
        pc-out-of-program error after the branch had already retired."""
        from repro.cpu.isa import Instruction, Op
        from repro.errors import CPUError

        program = [
            Instruction(op=Op.B, imm=1, uses_imm=True),  # target index 2
            Instruction(op=Op.HALT),
        ]
        with pytest.raises(CPUError, match="branch target index 2"):
            self._cpu(program).run(100)

    def test_branch_to_last_instruction_is_allowed(self):
        from repro.cpu.isa import Instruction, Op

        program = [
            Instruction(op=Op.B, imm=0, uses_imm=True),  # target index 1
            Instruction(op=Op.HALT),
        ]
        cpu = self._cpu(program)
        result = cpu.run(100)
        assert type(result.event).__name__ == "ExitTrap"

    @pytest.mark.parametrize("opname", ["LSL", "LSR", "ASR", "ROR"])
    def test_shift_to_pc_is_rejected(self, opname):
        """Regression: shifts were missing from the rd=15 raiser check,
        so the closure tier silently wrote ``regs[15]`` where the
        reference interpreter raises."""
        from repro.cpu.isa import Instruction, Op
        from repro.errors import CPUError

        program = [
            Instruction(op=Op[opname], rd=15, rn=0, imm=1, uses_imm=True),
            Instruction(op=Op.HALT),
        ]
        with pytest.raises(CPUError, match="writes to pc"):
            self._cpu(program).run(100)


ALU_OPS = ["ADD", "SUB", "RSB", "AND", "ORR", "EOR", "BIC", "LSL", "LSR",
           "ASR", "ROR"]


@st.composite
def straight_line_program(draw):
    """A random straight-line program over r0-r9 ending in SWI #0."""
    lines = [f"MOV r{i}, #{draw(st.integers(-1000, 1000))}" for i in range(4)]
    count = draw(st.integers(min_value=1, max_value=25))
    for _ in range(count):
        kind = draw(st.sampled_from(["alu", "mul", "cmp", "shift_imm"]))
        rd = draw(st.integers(0, 9))
        rn = draw(st.integers(0, 9))
        rm = draw(st.integers(0, 9))
        if kind == "alu":
            op = draw(st.sampled_from(ALU_OPS[:7]))
            if draw(st.booleans()):
                lines.append(f"{op} r{rd}, r{rn}, #{draw(st.integers(-100, 100))}")
            else:
                lines.append(f"{op} r{rd}, r{rn}, r{rm}")
        elif kind == "mul":
            lines.append(f"MUL r{rd}, r{rn}, r{rm}")
        elif kind == "cmp":
            lines.append(f"CMP r{rn}, r{rm}")
        else:
            op = draw(st.sampled_from(["LSL", "LSR", "ASR", "ROR"]))
            lines.append(f"{op} r{rd}, r{rn}, #{draw(st.integers(0, 40))}")
    lines.append("MOV r0, #0")
    lines.append("HALT")
    return "\n".join(lines)


class TestRandomPrograms:
    @given(source=straight_line_program(), burst=st.integers(1, 50))
    @settings(max_examples=80, deadline=None)
    def test_equivalence(self, source, burst):
        fast, slow, flog, slog = run_both(source, [burst] * 80)
        assert flog == slog
        assert_same_state(fast, slow)
