"""Workload registry, scaling, and data generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.data import (
    bytes_to_words,
    synthetic_audio,
    synthetic_image,
    synthetic_plaintext,
    words_to_bytes,
    words_to_directive,
)
from repro.apps.registry import WORKLOADS, get_workload
from repro.apps.workloads import (
    WorkloadVariant,
    build_variant,
    memory_size_for,
)
from repro.errors import WorkloadError


class TestRegistry:
    def test_registered_workloads(self):
        assert set(WORKLOADS) == {
            "echo", "alpha", "twofish", "hash", "phases", "burst"
        }

    def test_lookup(self):
        assert get_workload("alpha").name == "alpha"

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("raytracer")

    def test_unknown_error_lists_choices(self):
        """The error must name the workload and every valid choice."""
        with pytest.raises(WorkloadError) as excinfo:
            get_workload("raytracer")
        message = str(excinfo.value)
        assert "'raytracer'" in message
        for name in sorted(WORKLOADS):
            assert name in message

    def test_contention_knees_match_paper(self):
        """§5.1: echo uses two circuits, the others one."""
        assert get_workload("echo").circuits_per_process == 2
        assert get_workload("alpha").circuits_per_process == 1
        assert get_workload("twofish").circuits_per_process == 1


class TestScaling:
    def test_items_for_scale_full(self):
        workload = get_workload("alpha")
        assert workload.items_for_scale(1.0) == workload.paper_items

    def test_items_for_scale_floor(self):
        workload = get_workload("alpha")
        assert workload.items_for_scale(1e-9) == workload.min_items

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("alpha").items_for_scale(0)

    def test_too_few_items_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("alpha").build(items=1)


class TestBuildVariant:
    def test_string_variant(self):
        program = build_variant(get_workload("alpha"), 8, "software")
        assert "software" in program.name

    def test_enum_variant(self):
        program = build_variant(
            get_workload("alpha"), 8, WorkloadVariant.ACCELERATED
        )
        assert len(program.circuit_table) == 1

    def test_software_variant_has_no_circuits(self):
        program = build_variant(get_workload("echo"), 8, "software")
        assert program.circuit_table == []

    def test_memory_size_for_rounds_to_pages(self):
        assert memory_size_for(0) == 64 * 1024
        assert memory_size_for(200_000) % 4096 == 0
        assert memory_size_for(200_000) > 200_000


class TestDataGenerators:
    def test_image_deterministic(self):
        assert synthetic_image(64, seed=3) == synthetic_image(64, seed=3)

    def test_image_seed_dependent(self):
        assert synthetic_image(64, seed=3) != synthetic_image(64, seed=4)

    def test_image_words_are_32_bit(self):
        assert all(0 <= w <= 0xFFFFFFFF for w in synthetic_image(100))

    def test_audio_within_16_bits(self):
        for word in synthetic_audio(500):
            signed = word - (1 << 32) if word >> 31 else word
            assert -32768 <= signed <= 32767

    def test_audio_has_both_signs(self):
        samples = synthetic_audio(500)
        signed = [w - (1 << 32) if w >> 31 else w for w in samples]
        assert any(s > 0 for s in signed) and any(s < 0 for s in signed)

    def test_plaintext_block_sized(self):
        assert len(synthetic_plaintext(5)) == 80

    @given(
        words=st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=32
        )
    )
    @settings(max_examples=50)
    def test_words_bytes_roundtrip(self, words):
        assert bytes_to_words(words_to_bytes(words)) == words

    def test_bytes_to_words_requires_alignment(self):
        with pytest.raises(ValueError):
            bytes_to_words(b"abc")

    def test_words_to_directive_shape(self):
        text = words_to_directive([1, 2, 3], per_line=2)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].strip().startswith(".word")

    def test_words_to_directive_empty(self):
        assert ".space 0" in words_to_directive([])
